#include "service/sharded_detection_service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "graph/dynamic_graph.h"
#include "peel/static_peeler.h"
#include "service/router_scratch.h"
#include "storage/delta_segment.h"
#include "storage/sharded_snapshot.h"
#include "storage/snapshot.h"

namespace spade {

namespace {

/// splitmix64 finalizer: adjacent vertex ids land on unrelated shards.
std::size_t SplitMix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

}  // namespace

Partitioner HashOfSourcePartitioner() {
  Partitioner p(
      [](const Edge& e) { return SplitMix(e.src); },
      [](VertexId v) { return SplitMix(v); });
  p.routes_by_src_home = true;  // edge_key(e) == home(e.src) by definition
  return p;
}

Partitioner TenantPartitioner(VertexId vertices_per_tenant) {
  SPADE_CHECK(vertices_per_tenant > 0);
  Partitioner p(
      [vertices_per_tenant](const Edge& e) -> std::size_t {
        return e.src / vertices_per_tenant;
      },
      [vertices_per_tenant](VertexId v) -> std::size_t {
        return v / vertices_per_tenant;
      });
  p.routes_by_src_home = true;  // edge_key(e) == home(e.src) by definition
  return p;
}

namespace {

/// One partition scratch per producer thread, shared across services: a
/// chunk is partitioned and handed over within one SubmitBatch call, so
/// nothing aliases, and the arenas amortize to zero allocations per batch.
RouterScratch& TlsRouterScratch() {
  thread_local RouterScratch scratch;
  return scratch;
}

// fetch_add on atomic<double> is C++20-and-up; the CAS loop is the portable
// spelling and contends only when two workers land on the same shard pair in
// the same instant. Returns the pre-add value.
double AtomicAddDouble(std::atomic<double>& slot, double delta) {
  double seen = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(seen, seen + delta,
                                     std::memory_order_relaxed)) {
  }
  return seen;
}

}  // namespace

namespace {

/// Worker count for a fleet of `num_partitions` detectors at
/// `partitions_per_shard` granularity (0 counts as 1; divisibility is
/// checked in the constructor body, after this feeds the map size).
std::size_t WorkerCountFor(std::size_t num_partitions,
                           std::size_t partitions_per_shard) {
  const std::size_t pps = std::max<std::size_t>(1, partitions_per_shard);
  return std::max<std::size_t>(1, num_partitions / pps);
}

}  // namespace

ShardedDetectionService::ShardedDetectionService(
    std::vector<Spade> shards, ShardAlertFn on_alert,
    ShardedDetectionServiceOptions options)
    : options_(std::move(options)),
      on_alert_(std::move(on_alert)),
      map_(shards.size(),
           WorkerCountFor(shards.size(),
                          options_.rebalance.partitions_per_shard)),
      slab_pool_(std::make_shared<SlabPool>()),
      boundary_(std::max<std::size_t>(1, shards.size())) {
  SPADE_CHECK(!shards.empty());
  const std::size_t pps =
      std::max<std::size_t>(1, options_.rebalance.partitions_per_shard);
  SPADE_CHECK(shards.size() % pps == 0);
  const std::size_t num_partitions = shards.size();
  const std::size_t num_workers = num_partitions / pps;
  // Without rebalance at one partition per shard, partition == shard and
  // every path below degenerates to the fixed-placement fleet.
  const bool multi = options_.rebalance.enabled || pps > 1;
  if (!options_.partitioner) options_.partitioner = HashOfSourcePartitioner();
  if (!options_.partitioner.home) {
    // A partitioner supplied as a bare edge function: derive vertex homes
    // from the key of a synthetic self-edge, which matches the edge routing
    // exactly whenever the key only reads the source vertex.
    options_.partitioner.home =
        [edge_key = options_.partitioner.edge_key](VertexId v) {
          return edge_key(Edge{v, v, 1.0, 0});
        };
  }
  semantics_ = shards.front().semantics_name();
  bool has_override = false;
  for (const auto& o : options_.stitch.pair_trigger_overrides) {
    has_override |= o.weight > 0.0;
  }
  const bool trigger_armed =
      (options_.stitch.trigger_weight > 0.0 || has_override) &&
      num_partitions > 1;
  if (trigger_armed) {
    const std::size_t pairs = num_partitions * num_partitions;
    pair_weight_ = std::make_unique<std::atomic<double>[]>(pairs);
    pair_threshold_ = std::make_unique<double[]>(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      pair_weight_[i].store(0.0, std::memory_order_relaxed);
      pair_threshold_[i] = options_.stitch.trigger_weight;
    }
    // Overrides apply symmetrically (the accumulators are ordered pairs,
    // the policy is not); later entries win on duplicates.
    for (const auto& o : options_.stitch.pair_trigger_overrides) {
      if (o.a >= num_partitions || o.b >= num_partitions || o.a == o.b) {
        SPADE_LOG_WARNING() << "ignoring pair_trigger_override {" << o.a
                            << ", " << o.b << "}: not a partition pair";
        continue;
      }
      pair_threshold_[o.a * num_partitions + o.b] = o.weight;
      pair_threshold_[o.b * num_partitions + o.a] = o.weight;
    }
  }
  // Workers start their threads inside the ShardWorker constructor, so the
  // boundary hook may fire while this loop is still building later shards.
  // It must not read workers_.size(); the partition count is captured
  // instead.
  BoundaryUpdateFn boundary_hook;
  if (num_partitions > 1) {
    boundary_hook = [this, num_partitions](const Edge& e, double applied,
                                           bool retired) {
      OnBoundaryUpdate(num_partitions, e, applied, retired);
    };
  }
  // Routing and forwarding closures read `this->map_` and
  // `this->options_.partitioner` — both fully built before any worker
  // exists. Null in fixed-placement mode: the worker then runs the
  // zero-overhead sole-partition path.
  PartitionOfFn partition_of;
  if (multi) {
    partition_of = [this](const Edge& e) { return PartitionOf(e); };
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    FraudAlertFn shard_alert;
    if (on_alert_) {
      shard_alert = [this, i](const Community& c) { on_alert_(i, c); };
    }
    DetectionServiceOptions worker_options = options_.shard;
    if (!options_.shard_cpus.empty()) {
      worker_options.cpu =
          options_.shard_cpus[i % options_.shard_cpus.size()];
    }
    RetireNotifyFn shard_retire;
    if (options_.window.span > 0) {
      worker_options.track_window = true;
      shard_retire = [this, i](std::size_t) { OnShardRetire(i); };
    }
    ForwardFn forward;
    if (multi) {
      forward = [this, i](std::span<const Edge> edges) {
        return RouteForward(i, edges);
      };
    }
    // Initial placement: partition pid lives on worker pid % num_workers
    // (matching the PartitionMap's epoch-0 entries).
    std::vector<ShardWorker::PartitionSeed> seeds;
    seeds.reserve(pps);
    for (std::size_t pid = i; pid < num_partitions; pid += num_workers) {
      seeds.push_back(
          ShardWorker::PartitionSeed{pid, std::move(shards[pid])});
    }
    workers_.push_back(std::make_unique<ShardWorker>(
        std::move(seeds), num_partitions, partition_of, std::move(forward),
        std::move(shard_alert), worker_options, std::move(shard_retire),
        boundary_hook, slab_pool_));
  }
  // The interval path runs for a single shard too: a stitch pass there is
  // just "publish the one shard's snapshot with provenance", which is what
  // makes CurrentGlobalCommunity(kStitched) well-defined (stitch_passes
  // advances, shards == {0}) instead of silently never stitching.
  if (options_.stitch.interval_ms > 0 || trigger_armed) {
    stitcher_ = std::thread([this] { StitcherLoop(); });
  }
  if (options_.rebalance.enabled && options_.rebalance.interval_ms > 0) {
    rebalancer_ = std::thread([this] { RebalancerLoop(); });
  }
}

ShardedDetectionService::~ShardedDetectionService() { Stop(); }

std::size_t ShardedDetectionService::PartitionOf(const Edge& raw_edge) const {
  // The STABLE routing key: a partition id never changes for an edge, only
  // the partition's owner shard does (through map_). routes_by_src_home
  // keys on the source home so per-partition order equals per-source order.
  return (options_.partitioner.routes_by_src_home
              ? options_.partitioner.home(raw_edge.src)
              : options_.partitioner.edge_key(raw_edge)) %
         map_.num_partitions();
}

std::size_t ShardedDetectionService::ShardOf(const Edge& raw_edge) const {
  return map_.ShardOf(options_.partitioner.edge_key(raw_edge) %
                      map_.num_partitions());
}

std::size_t ShardedDetectionService::HomeShardOf(VertexId v) const {
  return map_.ShardOf(options_.partitioner.home(v) % map_.num_partitions());
}

void ShardedDetectionService::MaybeRecordBoundary(const Edge& raw_edge) {
  // Boundary buckets are keyed by PARTITION home, not worker: the key must
  // be stable across partition moves or a rebalance would strand records.
  const std::size_t n = map_.num_partitions();
  if (n == 1) return;
  const std::size_t src_home = options_.partitioner.home(raw_edge.src) % n;
  const std::size_t dst_home = options_.partitioner.home(raw_edge.dst) % n;
  if (src_home != dst_home) boundary_.Record(src_home, dst_home, raw_edge);
}

void ShardedDetectionService::SeedBoundaryIndex(
    std::span<const Edge> raw_edges) {
  for (const Edge& e : raw_edges) MaybeRecordBoundary(e);
}

void ShardedDetectionService::OnBoundaryUpdate(std::size_t num_partitions,
                                               const Edge& edge,
                                               double applied, bool retired) {
  const std::size_t src_home =
      options_.partitioner.home(edge.src) % num_partitions;
  const std::size_t dst_home =
      options_.partitioner.home(edge.dst) % num_partitions;
  if (src_home == dst_home) return;
  if (!retired) {
    // Record at the APPLIED semantic weight (what the detector actually
    // credited), not the raw wire weight: the seam peel sums these, so the
    // index must agree with the detectors. Fired inside the worker's apply
    // critical section, strictly before the post-apply snapshot publish —
    // so a SaveState that captures the edge also captures its record.
    // Partition-home keys make the record placement-independent: a
    // rebalance moves detectors between workers but never renames a
    // partition, so the bucket an edge lands in is the same before and
    // after any number of moves.
    boundary_.Record(src_home, dst_home,
                     Edge{edge.src, edge.dst, applied, edge.ts});
  }
  if (!pair_weight_) return;
  // Insert AND retire deltas both count toward the trigger: either one
  // moves the seam's true density away from what the last pass measured.
  std::atomic<double>& slot =
      pair_weight_[src_home * num_partitions + dst_home];
  const double before = AtomicAddDouble(slot, std::abs(applied));
  // Per-pair override, else the fleet default (<= 0 disarms this pair:
  // weight still accumulates for the next pass's fold, but never wakes
  // the stitcher on its own).
  const double threshold =
      pair_threshold_[src_home * num_partitions + dst_home];
  if (threshold <= 0.0) return;
  if (before < threshold && before + std::abs(applied) >= threshold) {
    stitch_triggers_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stitcher_mutex_);
      trigger_pending_ = true;
    }
    stitcher_cv_.notify_all();
  }
}

void ShardedDetectionService::ObserveTimestamp(Timestamp ts) {
  // CAS-max: concurrent producers race, the highest timestamp wins. This
  // is the window policy's entire hot-path cost — one relaxed RMW per
  // edge (per chunk on the batched path).
  Timestamp seen = watermark_.load(std::memory_order_relaxed);
  while (ts > seen && !watermark_.compare_exchange_weak(
                          seen, ts, std::memory_order_relaxed)) {
  }
  const Timestamp mark = std::max(ts, seen);
  if (mark <= options_.window.span) return;  // window not yet full
  const Timestamp horizon = mark - options_.window.span;
  Timestamp stride = options_.window.stride;
  if (stride <= 0) {
    stride = std::max<Timestamp>(1, options_.window.span / 8);
  }
  // One producer wins each stride trigger; the CAS loop keeps losers from
  // re-firing the same horizon.
  Timestamp last = last_horizon_.load(std::memory_order_relaxed);
  for (;;) {
    if (horizon < last + stride) return;
    if (last_horizon_.compare_exchange_weak(last, horizon,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  Timestamp evict = pending_evict_horizon_.load(std::memory_order_relaxed);
  while (horizon > evict && !pending_evict_horizon_.compare_exchange_weak(
                                evict, horizon, std::memory_order_relaxed)) {
  }
  for (auto& w : workers_) {
    // A full queue in fail-fast mode can reject the marker. Dropping it is
    // safe: a retire pass expires everything older than its horizon, so
    // the next stride trigger covers whatever this one missed.
    const Status s = w->SubmitRetire(horizon);
    if (!s.ok() && s.code() != StatusCode::kOutOfRange) {
      SPADE_LOG_WARNING() << "window retire trigger failed: " << s.ToString();
    }
  }
}

void ShardedDetectionService::ObserveBatchTimestamps(
    std::span<const Edge> raw_edges) {
  Timestamp max_ts = raw_edges.front().ts;
  for (const Edge& e : raw_edges) max_ts = std::max(max_ts, e.ts);
  ObserveTimestamp(max_ts);
}

Status ShardedDetectionService::RetireOlderThan(Timestamp horizon) {
  if (options_.window.span <= 0) {
    return Status::FailedPrecondition(
        "RetireOlderThan: window expiry is off (WindowOptions::span == 0)");
  }
  Timestamp evict = pending_evict_horizon_.load(std::memory_order_relaxed);
  while (horizon > evict && !pending_evict_horizon_.compare_exchange_weak(
                                evict, horizon, std::memory_order_relaxed)) {
  }
  Status first_error = Status::OK();
  for (auto& w : workers_) {
    const Status s = w->SubmitRetire(horizon);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  // Boundary eviction runs here (and at stitch-pass start), never on the
  // submit hot path: the explicit call is the "I want O(window) resident
  // now" knob, so it does not wait for the next stitch.
  {
    std::lock_guard<std::mutex> stitch_lock(stitch_mutex_);
    boundary_.EvictOlderThan(horizon, stitch_cursor_, &boundary_weight_);
  }
  return first_error;
}

void ShardedDetectionService::OnShardRetire(std::size_t shard) {
  const auto snap = LoadStitched();
  if (!snap) return;
  // `shards` is sorted unique (StitchNow builds it that way). An empty
  // provenance list (empty community) is dropped too — conservative and
  // harmless.
  const bool contributes =
      snap->shards.empty() ||
      std::binary_search(snap->shards.begin(), snap->shards.end(), shard);
  // Expiry can only shrink a fixed member set's induced density, so a
  // stitched snapshot measured before this retire pass may now OVERSTATE.
  // Drop it; stitched reads fall back to the live argmax until the next
  // pass republishes an honest one.
  if (contributes) StoreStitched(nullptr);
}

std::uint64_t ShardedDetectionService::EdgesRetired() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->EdgesRetired();
  return total;
}

std::vector<Edge> ShardedDetectionService::ShardWindow(
    std::size_t shard) const {
  SPADE_CHECK(shard < workers_.size());
  return workers_[shard]->WindowEdges();
}

Status ShardedDetectionService::Submit(const Edge& raw_edge) {
  if (options_.window.span > 0) ObserveTimestamp(raw_edge.ts);
  const std::size_t n = workers_.size();
  if (n == 1) return workers_[0]->Submit(raw_edge);
  // The router only routes now. Boundary recording moved to the worker's
  // apply path (OnBoundaryUpdate): the worker records the edge at its
  // APPLIED weight inside the detector critical section, which both fixes
  // the raw-vs-applied weight mismatch for FD semantics and restores the
  // save invariant for free — an edge inside a SaveState snapshot has its
  // record written before the snapshot could have been taken.
  //
  // Routing is two loads: the stable partition key, then one acquire read
  // through the lock-free partition map to the current owner. A racing
  // rebalance can direct this edge at the just-vacated owner; the worker's
  // apply loop notices the foreign pid and forwards it (never drops it).
  return workers_[map_.ShardOf(PartitionOf(raw_edge))]->Submit(raw_edge);
}

Status ShardedDetectionService::SubmitBatch(std::span<const Edge> raw_edges,
                                            std::size_t* enqueued) {
  if (enqueued != nullptr) *enqueued = 0;
  if (raw_edges.empty()) return Status::OK();
  if (options_.window.span > 0) ObserveBatchTimestamps(raw_edges);
  if (workers_.size() == 1) {
    // Single-shard fast path: no partitioning, no boundary edges — the
    // chunk hands over as-is (accepted accounting included when asked).
    std::size_t accepted = 0;
    const Status s = workers_[0]->SubmitBatch(
        raw_edges, enqueued != nullptr ? &accepted : nullptr);
    if (enqueued != nullptr) *enqueued = accepted;
    return s;
  }
  RouterScratch& scratch = TlsRouterScratch();
  scratch.Partition(options_.partitioner, map_, workers_.size(), raw_edges,
                    slab_pool_.get());
  // Boundary recording happens on the worker apply path (see Submit); the
  // batched router's only job is splitting the chunk into per-shard slabs.
  Status first_error = Status::OK();
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (scratch.Part(s).empty()) continue;
    std::size_t accepted = 0;
    // Move-through: the scratch-built slab becomes the ring slab, so the
    // whole batched path copies each edge exactly once.
    const Status status = workers_[s]->SubmitBatch(
        scratch.TakePart(s), enqueued != nullptr ? &accepted : nullptr);
    if (enqueued != nullptr) *enqueued += accepted;
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

std::uint64_t ShardedDetectionService::TotalSubmitted() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->Submitted();
  return total;
}

void ShardedDetectionService::Drain() {
  // Forwarding means one pass is not enough: an edge that raced a
  // partition move re-enters the NEW owner's queue, possibly after that
  // worker's Drain already returned. Iterate to a fixpoint — when a full
  // pass completes and the fleet-wide submitted count did not move, no
  // forwarded edge is in flight anywhere.
  for (;;) {
    const std::uint64_t before = TotalSubmitted();
    for (auto& w : workers_) w->Drain();
    if (TotalSubmitted() == before) return;
  }
}

bool ShardedDetectionService::DrainFor(std::chrono::milliseconds timeout) {
  // One shared deadline: each shard gets whatever budget remains, so the
  // total wait is bounded by `timeout` no matter how many shards lag.
  // Same forwarded-edge fixpoint as Drain, deadline-bounded.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const std::uint64_t before = TotalSubmitted();
    for (auto& w : workers_) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (!w->DrainFor(std::max(remaining, std::chrono::milliseconds(0)))) {
        return false;
      }
    }
    if (TotalSubmitted() == before) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
  }
}

void ShardedDetectionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(rebalancer_mutex_);
    rebalancer_stop_ = true;
  }
  rebalancer_cv_.notify_all();
  if (rebalancer_.joinable()) rebalancer_.join();
  {
    std::lock_guard<std::mutex> lock(stitcher_mutex_);
    stitcher_stop_ = true;
  }
  stitcher_cv_.notify_all();
  if (stitcher_.joinable()) stitcher_.join();
  // Bounded settle pass: give forwarded backlogs a chance to hand off
  // before workers stop accepting (a stopped worker rejects OfferBatch,
  // which would strand a victim's backlog in the final flush-or-drop).
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t before = TotalSubmitted();
    for (auto& w : workers_) w->DrainFor(std::chrono::milliseconds(50));
    if (TotalSubmitted() == before) break;
  }
  for (auto& w : workers_) w->Stop();
}

std::size_t ShardedDetectionService::MaxQueueDepth() const {
  std::size_t depth = 0;
  for (const auto& w : workers_) depth = std::max(depth, w->QueueDepth());
  return depth;
}

void ShardedDetectionService::ResetQueueHighWater() {
  for (auto& w : workers_) w->ResetHighWater();
}

Status ShardedDetectionService::InspectPartition(
    std::size_t pid, const std::function<void(const Spade&)>& fn) const {
  if (pid >= map_.num_partitions()) {
    return Status::InvalidArgument("InspectPartition: partition " +
                                   std::to_string(pid) + " out of range");
  }
  // The rebalance lock freezes placement, so the owner read here is the
  // owner when the inspection runs (no move can slip between the two).
  std::lock_guard<std::mutex> lock(rebalance_mutex_);
  return workers_[map_.ShardOf(pid)]->InspectPartition(pid, fn);
}

Status ShardedDetectionService::MovePartition(std::size_t pid,
                                              std::size_t to_shard,
                                              bool stolen) {
  if (!options_.rebalance.enabled) {
    return Status::FailedPrecondition(
        "MovePartition: rebalance is off (RebalanceOptions::enabled)");
  }
  if (pid >= map_.num_partitions()) {
    return Status::InvalidArgument("MovePartition: partition " +
                                   std::to_string(pid) + " out of range");
  }
  if (to_shard >= workers_.size()) {
    return Status::InvalidArgument("MovePartition: shard " +
                                   std::to_string(to_shard) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> lock(rebalance_mutex_);
  const std::size_t from = map_.ShardOf(pid);
  if (from == to_shard) return Status::OK();
  // Quiesce (best effort, bounded): shrink the set of in-flight edges the
  // thief will have to bounce back. Correctness does not depend on this —
  // any edge still queued at the victim after the detach is forwarded by
  // its apply loop under the new routing epoch.
  workers_[from]->DrainFor(
      std::chrono::milliseconds(options_.rebalance.quiesce_timeout_ms));
  std::unique_ptr<ShardWorker::Partition> part =
      workers_[from]->DetachPartition(pid);
  if (part == nullptr) {
    return Status::Internal("MovePartition: partition " +
                            std::to_string(pid) +
                            " not owned by its mapped shard " +
                            std::to_string(from));
  }
  // Order matters: attach BEFORE publish. Between detach and publish,
  // edges for pid still route to `from`, whose apply loop backlogs and
  // forwards them; the forward targets map_.ShardOf(pid), which must
  // already own the partition by the time it reads the new entry.
  workers_[to_shard]->AttachPartition(std::move(part));
  map_.Publish(pid, to_shard);
  partitions_moved_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedDetectionService::RebalanceNow(std::size_t pid,
                                             std::size_t to_shard) {
  return MovePartition(pid, to_shard, /*stolen=*/false);
}

std::size_t ShardedDetectionService::RouteForward(
    std::size_t from, std::span<const Edge> edges) {
  // Called from worker `from`'s apply loop with its misrouted backlog.
  // Non-blocking by contract: OfferBatch never parks, so two mutually
  // forwarding workers cannot deadlock. Returns the accepted PREFIX
  // length; the caller keeps the rest and retries next round.
  std::size_t done = 0;
  while (done < edges.size()) {
    const std::size_t pid = PartitionOf(edges[done]);
    const std::size_t target = map_.ShardOf(pid);
    // Came home: the partition moved back while the edge sat in the
    // backlog. Stop here — the caller re-checks ownership and applies
    // locally (forwarding to ourselves through the ring would reorder it
    // behind edges that arrived later).
    if (target == from) break;
    std::size_t run = done + 1;
    while (run < edges.size() &&
           map_.ShardOf(PartitionOf(edges[run])) == target) {
      ++run;
    }
    const std::size_t len = run - done;
    const std::size_t accepted =
        workers_[target]->OfferBatch(edges.subspan(done, len));
    done += accepted;
    if (accepted < len) break;  // target full: stop early, keep the rest
  }
  if (done > 0) forwarded_edges_.fetch_add(done, std::memory_order_relaxed);
  return done;
}

void ShardedDetectionService::RebalancerLoop() {
  const RebalanceOptions& opt = options_.rebalance;
  std::unique_lock<std::mutex> lock(rebalancer_mutex_);
  while (!rebalancer_stop_) {
    rebalancer_cv_.wait_for(lock, std::chrono::milliseconds(opt.interval_ms),
                            [this] { return rebalancer_stop_; });
    if (rebalancer_stop_) break;
    lock.unlock();

    // Victim/thief selection on RECENT queue high-water marks (reset each
    // scan, so one historic burst cannot keep triggering steals forever).
    std::size_t victim = 0, thief = 0;
    std::size_t victim_hwm = 0;
    std::size_t thief_hwm = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::size_t hwm = workers_[i]->TakeRecentHighWater();
      if (hwm > victim_hwm) {
        victim_hwm = hwm;
        victim = i;
      }
      if (hwm < thief_hwm) {
        thief_hwm = hwm;
        thief = i;
      }
    }
    bool moved = false;
    const bool skewed =
        victim != thief && victim_hwm >= opt.min_queue_depth &&
        static_cast<double>(victim_hwm) >=
            opt.skew_ratio *
                static_cast<double>(std::max<std::size_t>(1, thief_hwm));
    if (skewed) {
      // Pick the partition whose departure best levels the pair, by
      // recent applied-edge load. Never empty the victim completely —
      // a single-partition worker's hot partition is not stealable
      // (moving it just relocates the hotspot).
      const auto victim_loads = workers_[victim]->PartitionLoads();
      std::uint64_t thief_total = 0;
      for (const auto& [pid, load] : workers_[thief]->PartitionLoads()) {
        thief_total += load;
      }
      if (victim_loads.size() >= 2) {
        std::uint64_t victim_total = 0;
        for (const auto& [pid, load] : victim_loads) victim_total += load;
        std::size_t best_pid = map_.num_partitions();
        std::uint64_t best_peak = std::numeric_limits<std::uint64_t>::max();
        for (const auto& [pid, load] : victim_loads) {
          if (load == 0) continue;
          const std::uint64_t peak =
              std::max(victim_total - load, thief_total + load);
          if (peak < best_peak) {
            best_peak = peak;
            best_pid = pid;
          }
        }
        // Hysteresis: only move when the pair's projected peak load drops
        // by at least min_improvement — otherwise thrash costs more than
        // the imbalance.
        if (best_pid < map_.num_partitions() && victim_total > 0 &&
            static_cast<double>(victim_total) - static_cast<double>(best_peak) >=
                opt.min_improvement * static_cast<double>(victim_total)) {
          const Status s = MovePartition(best_pid, thief, /*stolen=*/true);
          if (!s.ok()) {
            SPADE_LOG_WARNING()
                << "rebalancer: steal of partition " << best_pid
                << " for shard " << thief << " failed: " << s.ToString();
          }
          moved = s.ok();
        }
      }
    }
    lock.lock();
    if (moved && opt.cooldown_ms > 0) {
      // Post-move cooldown: let the new placement's queue stats settle
      // before judging skew again.
      rebalancer_cv_.wait_for(lock, std::chrono::milliseconds(opt.cooldown_ms),
                              [this] { return rebalancer_stop_; });
    }
  }
}

std::pair<std::size_t, std::shared_ptr<const Community>>
ShardedDetectionService::ArgmaxSnapshot() const {
  // One load per shard; the winning snapshot is returned from the same
  // pass (re-loading after the argmax could observe a newer, lower-density
  // republication and break the "densest over all snapshots" contract).
  std::size_t best = 0;
  std::shared_ptr<const Community> best_snap;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    auto snap = workers_[i]->CurrentSnapshot();
    if (snap && (!best_snap || snap->density > best_snap->density)) {
      best_snap = std::move(snap);
      best = i;
    }
  }
  return {best, std::move(best_snap)};
}

std::size_t ShardedDetectionService::TopShard() const {
  return ArgmaxSnapshot().first;
}

std::shared_ptr<const GlobalCommunity> ShardedDetectionService::LoadStitched()
    const {
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  return stitched_.load();
#else
  std::lock_guard<std::mutex> lock(stitched_mutex_);
  return stitched_;
#endif
}

void ShardedDetectionService::StoreStitched(
    std::shared_ptr<const GlobalCommunity> snap) {
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  stitched_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(stitched_mutex_);
  stitched_ = std::move(snap);
#endif
}

Community ShardedDetectionService::CurrentCommunity(
    GlobalReadMode mode) const {
  if (mode == GlobalReadMode::kStitched) {
    return CurrentGlobalCommunity();
  }
  const auto [shard, snap] = ArgmaxSnapshot();
  return snap ? *snap : Community{};
}

GlobalCommunity ShardedDetectionService::CurrentGlobalCommunity() const {
  const auto stitched = LoadStitched();
  const auto [shard, snap] = ArgmaxSnapshot();
  const double argmax_density = snap ? snap->density : 0.0;
  // A PUBLISHED stale stitched snapshot never overclaims. Inserts only
  // grow a fixed member set's induced density, and the one thing that can
  // shrink it — a window-expiry retire pass on a contributing shard — is
  // fenced on both sides: the worker announces the pass (on_retire_(0),
  // which drops the snapshot via OnShardRetire) BEFORE its first deletion,
  // and StitchPass rechecks both the retire-begins and edges-retired
  // counters around its own publish. So by the time any deletion can make
  // this snapshot overstate, it is already unpublished. Reads between a
  // retire pass and the next stitch fall back to the live argmax below.
  if (stitched && stitched->density >= argmax_density) return *stitched;
  GlobalCommunity g;
  if (snap) {
    g.members = snap->members;
    g.density = snap->density;
    g.shards.push_back(shard);
  }
  return g;
}

GlobalCommunity ShardedDetectionService::StitchNow() {
  return StitchPass(/*unbounded_seam=*/false);
}

GlobalCommunity ShardedDetectionService::StitchPass(bool unbounded_seam) {
  if (options_.stitch.drain_before_stitch) Drain();

  GlobalCommunity result;
  bool fire_alert = false;
  {
    std::lock_guard<std::mutex> stitch_lock(stitch_mutex_);
    const std::uint64_t pass =
        stitch_passes_.fetch_add(1, std::memory_order_relaxed) + 1;
    result.stitch_pass = pass;

    // Zero the trigger accumulators FIRST: weight applied between this
    // point and the fold below is counted twice (folded by this pass and
    // still credited toward the next trigger), which costs at worst one
    // spurious wakeup — the safe side of the race. Zeroing after the fold
    // would lose that weight and could leave a crossed threshold unseen.
    if (pair_weight_) {
      const std::size_t pairs =
          map_.num_partitions() * map_.num_partitions();
      for (std::size_t i = 0; i < pairs; ++i) {
        pair_weight_[i].exchange(0.0, std::memory_order_relaxed);
      }
    }

    // Retire passes that complete after this point can invalidate what
    // this pass is about to measure; capture the per-shard retire counts
    // so publication can detect the race. Both counters matter: retired
    // edges (bumped after a pass deletes) catch completed passes, and
    // retire-begins (bumped BEFORE the first deletion) catches a pass
    // that is mid-deletion while we gather — EdgesRetired alone would
    // miss it until after we publish.
    std::vector<std::uint64_t> retired_before(workers_.size(), 0);
    std::vector<std::uint64_t> begins_before(workers_.size(), 0);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      retired_before[i] = workers_[i]->EdgesRetired();
      begins_before[i] = workers_[i]->RetireBegins();
    }
    const auto retire_raced = [this, &retired_before, &begins_before] {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i]->EdgesRetired() != retired_before[i]) return true;
        if (workers_[i]->RetireBegins() != begins_before[i]) return true;
      }
      return false;
    };

    // Evict the boundary index's expired prefix before folding: the seam
    // aggregate must describe the live window, and doing it here (never on
    // the submit path) is what keeps the index O(window) — each stitch
    // pass catches up to the highest horizon any retire pass was asked
    // to expire.
    const Timestamp evict_to =
        pending_evict_horizon_.load(std::memory_order_relaxed);
    if (evict_to > 0 && map_.num_partitions() > 1) {
      boundary_.EvictOlderThan(evict_to, stitch_cursor_, &boundary_weight_);
    }

    // One snapshot load per shard, reused for both the seam candidates and
    // the argmax fallback so the pass compares against a consistent view.
    std::vector<std::shared_ptr<const Community>> snaps(workers_.size());
    std::size_t argmax_shard = 0;
    double argmax_density = -1.0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      snaps[i] = workers_[i]->CurrentSnapshot();
      if (snaps[i] && snaps[i]->density > argmax_density) {
        argmax_density = snaps[i]->density;
        argmax_shard = i;
      }
    }

    // Seam candidates: every shard's snapshot members (so the stitched
    // answer can only refine the argmax), plus the heaviest
    // boundary-adjacent vertices up to the seam budget.
    std::unordered_set<VertexId> seam_set;
    for (const auto& snap : snaps) {
      if (!snap) continue;
      seam_set.insert(snap->members.begin(), snap->members.end());
    }
    if (map_.num_partitions() > 1) {
      boundary_.FoldNewEdges(&stitch_cursor_, &boundary_weight_);
      // Freshness bookmark: everything recorded up to here is now inside
      // the seam aggregate; the live counter minus this snapshot is how
      // many edges behind a stitched read can be (GetStats, lock-free).
      folded_recorded_.store(boundary_.RecordedEdges(),
                             std::memory_order_relaxed);
      // Folded buckets are consumed messages: collapse them to per-pair
      // per-vertex weight sums so the resident index is O(boundary
      // vertices), not O(cross-shard edges). SaveTail anchoring caps how
      // far this can reach (persist floor) — never past unsynced edges.
      if (options_.stitch.compact_boundary) {
        boundary_.CompactConsumed(stitch_cursor_);
      }
      const std::size_t budget =
          unbounded_seam
              ? std::numeric_limits<std::size_t>::max()
              : std::max(options_.stitch.max_seam_vertices, seam_set.size());
      if (seam_set.size() + boundary_weight_.size() <= budget) {
        for (const auto& [v, w] : boundary_weight_) seam_set.insert(v);
      } else {
        std::vector<std::pair<double, VertexId>> heaviest;
        heaviest.reserve(boundary_weight_.size());
        for (const auto& [v, w] : boundary_weight_) {
          if (seam_set.count(v) == 0) heaviest.push_back({w, v});
        }
        const std::size_t take =
            std::min(heaviest.size(), budget - seam_set.size());
        if (take < heaviest.size()) {
          // The budget dropped real candidates: the published answer may
          // understate the true cross-shard density. Surface it — callers
          // (and the trigger-driven stitcher, which escalates to an
          // unbounded pass) must not mistake a truncated pass for exact.
          result.seam_truncated = true;
          seam_truncated_.fetch_add(1, std::memory_order_relaxed);
          SPADE_LOG_WARNING()
              << "stitch pass " << pass << " truncated the seam: dropped "
              << (heaviest.size() - take) << " of " << heaviest.size()
              << " boundary candidates (max_seam_vertices="
              << options_.stitch.max_seam_vertices << ")";
        }
        std::partial_sort(heaviest.begin(),
                          heaviest.begin() + static_cast<std::ptrdiff_t>(take),
                          heaviest.end(), std::greater<>());
        for (std::size_t i = 0; i < take; ++i) {
          seam_set.insert(heaviest[i].second);
        }
      }
    }

    // Gather the exact induced subgraph over the seam set. Each edge lives
    // in exactly one shard's detector, so the union across shards is the
    // global induced edge multiset with the applied semantic weights —
    // nothing is double-counted and nothing inside the seam is missed.
    std::vector<VertexId> seam(seam_set.begin(), seam_set.end());
    std::sort(seam.begin(), seam.end());
    std::unordered_map<VertexId, VertexId> local_id;
    local_id.reserve(seam.size());
    for (std::size_t i = 0; i < seam.size(); ++i) {
      local_id.emplace(seam[i], static_cast<VertexId>(i));
    }
    std::vector<Edge> seam_edges;
    std::vector<double> seam_vertex_weight(seam.size(), 0.0);
    const auto contains = [&local_id](VertexId v) {
      return local_id.count(v) != 0;
    };
    {
      // Freeze placement for the gather: each partition's edges must be
      // scanned exactly once, and a concurrent move could otherwise hand a
      // partition from an already-visited worker to a not-yet-visited one
      // (double count) or the reverse (miss). Lock order stitch_mutex_ >
      // rebalance_mutex_ matches MovePartition, which never stitches.
      std::lock_guard<std::mutex> rebalance_lock(rebalance_mutex_);
      for (const auto& worker : workers_) {
        worker->CollectInduced(seam, contains, &seam_edges,
                               &seam_vertex_weight);
      }
    }
    result.seam_vertices = seam.size();
    result.seam_edges = seam_edges.size();

    // Peel the seam graph with the canonical static peeler. The density of
    // whatever suffix wins is the exact global induced density of that
    // member set (all of its edges are in the seam graph by construction).
    Community seam_best;
    if (!seam.empty()) {
      DynamicGraph seam_graph(seam.size());
      for (std::size_t i = 0; i < seam.size(); ++i) {
        seam_graph.SetVertexWeight(static_cast<VertexId>(i),
                                   seam_vertex_weight[i]);
      }
      for (const Edge& e : seam_edges) {
        const Status s = seam_graph.AddEdge(local_id.at(e.src),
                                            local_id.at(e.dst), e.weight);
        SPADE_DCHECK(s.ok());
        (void)s;
      }
      const PeelState state = PeelStatic(seam_graph);
      const Community local = state.DetectCommunity();
      seam_best.density = local.density;
      seam_best.members.reserve(local.members.size());
      for (const VertexId v : local.members) {
        seam_best.members.push_back(seam[v]);
      }
    }

    // The seam peel wins only when it is strictly denser than every
    // single-shard view; otherwise the pass republishes the argmax (with
    // provenance), so a stitched read never regresses below the plain one.
    if (!seam_best.members.empty() && seam_best.density > argmax_density) {
      result.members = std::move(seam_best.members);
      result.density = seam_best.density;
      result.stitched = true;
    } else if (argmax_density >= 0.0 && snaps[argmax_shard]) {
      result.members = snaps[argmax_shard]->members;
      result.density = snaps[argmax_shard]->density;
      result.stitched = false;
    }

    std::vector<std::size_t> member_shards;
    for (const VertexId v : result.members) {
      member_shards.push_back(HomeShardOf(v));
    }
    std::sort(member_shards.begin(), member_shards.end());
    member_shards.erase(
        std::unique(member_shards.begin(), member_shards.end()),
        member_shards.end());
    result.shards = std::move(member_shards);

    // Publication race guard: a retire pass that completed while this pass
    // gathered may have shrunk a shard we measured, so the result could
    // already overstate. Skip publish/alert/baseline and leave whatever
    // OnShardRetire did (usually a dropped snapshot) in place — the next
    // pass measures the post-expiry fleet. The caller still gets the
    // computed result for inspection.
    if (!retire_raced()) {
      if (result.stitched) {
        std::vector<VertexId> sorted = result.members;
        std::sort(sorted.begin(), sorted.end());
        if (sorted != last_stitched_members_ ||
            result.density != last_stitched_density_) {
          last_stitched_members_ = std::move(sorted);
          last_stitched_density_ = result.density;
          stitched_alerts_.fetch_add(1, std::memory_order_relaxed);
          fire_alert = true;
        }
      }
      StoreStitched(std::make_shared<const GlobalCommunity>(result));
      // Recheck AFTER the store: a retire pass whose count bumped between
      // the pre-store check and the store may have nulled the OLD snapshot
      // before our store resurrected a stale one. Any pass whose bump
      // lands after this recheck fires OnShardRetire after our store and
      // drops the new snapshot itself — so between the two checks and the
      // callback, no overstating snapshot stays published.
      if (retire_raced()) StoreStitched(nullptr);
    }
  }
  // Deliver outside the stitch lock, so a slow moderator (or one that calls
  // back into the service) cannot deadlock or delay the next pass.
  if (fire_alert && options_.stitch.on_stitch_alert) {
    options_.stitch.on_stitch_alert(result);
  }
  return result;
}

void ShardedDetectionService::StitcherLoop() {
  std::unique_lock<std::mutex> lock(stitcher_mutex_);
  while (!stitcher_stop_) {
    const auto wake = [this] { return stitcher_stop_ || trigger_pending_; };
    if (options_.stitch.interval_ms > 0) {
      // Timer AND trigger: the interval is the staleness backstop, the
      // trigger delivers freshness the moment enough seam weight moves.
      stitcher_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.stitch.interval_ms), wake);
    } else {
      // Pure event-driven mode: no timer, the queue wakes us.
      stitcher_cv_.wait(lock, wake);
    }
    if (stitcher_stop_) break;
    trigger_pending_ = false;
    lock.unlock();
    GlobalCommunity r = StitchPass(/*unbounded_seam=*/false);
    // A truncated triggered pass may have peeled the wrong seam subset;
    // the escalation pass pays the full cost once rather than publishing
    // a silently understated stitched density until the next trigger.
    if (r.seam_truncated) StitchPass(/*unbounded_seam=*/true);
    lock.lock();
  }
}

std::shared_ptr<const Community> ShardedDetectionService::ShardSnapshot(
    std::size_t shard) const {
  SPADE_CHECK(shard < workers_.size());
  return workers_[shard]->CurrentSnapshot();
}

Community ShardedDetectionService::ShardCommunity(std::size_t shard) const {
  SPADE_CHECK(shard < workers_.size());
  return workers_[shard]->CurrentCommunity();
}

void ShardedDetectionService::InspectShard(
    std::size_t shard, const std::function<void(const Spade&)>& fn) const {
  SPADE_CHECK(shard < workers_.size());
  workers_[shard]->InspectDetector(fn);
}

ShardedServiceStats ShardedDetectionService::GetStats() const {
  ShardedServiceStats stats;
  stats.shard_edges.reserve(workers_.size());
  stats.shard_alerts.reserve(workers_.size());
  stats.shard_queue_depth.reserve(workers_.size());
  for (const auto& w : workers_) {
    const std::uint64_t edges = w->EdgesProcessed();
    const std::uint64_t alerts = w->AlertsDelivered();
    const std::uint64_t retired = w->EdgesRetired();
    stats.edges_processed += edges;
    stats.alerts_delivered += alerts;
    stats.retired_edges += retired;
    stats.shard_edges.push_back(edges);
    stats.shard_alerts.push_back(alerts);
    stats.shard_retired.push_back(retired);
    stats.shard_detections.push_back(w->DetectionsRun());
    stats.shard_queue_depth.push_back(w->QueueDepth());
    stats.shard_queue_hwm.push_back(w->QueueDepthHighWater());
    stats.shard_busy_fraction.push_back(w->BusyFraction());
    stats.shard_partitions.push_back(w->OwnedPartitions().size());
  }
  stats.num_partitions = map_.num_partitions();
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.partitions_moved = partitions_moved_.load(std::memory_order_relaxed);
  stats.forwarded_edges = forwarded_edges_.load(std::memory_order_relaxed);
  stats.boundary_edges = boundary_.TotalEdges();
  stats.stitch_passes = stitch_passes_.load(std::memory_order_relaxed);
  stats.stitched_alerts = stitched_alerts_.load(std::memory_order_relaxed);
  stats.seam_truncated = seam_truncated_.load(std::memory_order_relaxed);
  stats.stitch_triggers = stitch_triggers_.load(std::memory_order_relaxed);
  // Freshness in edges: records the stitcher has not folded yet. Both
  // counters are monotone under live traffic, but a restore resets the
  // recorded counter, so clamp rather than trusting the subtraction.
  const std::uint64_t recorded = boundary_.RecordedEdges();
  const std::uint64_t folded = folded_recorded_.load(std::memory_order_relaxed);
  stats.boundary_unconsumed_edges = recorded > folded ? recorded - folded : 0;
  stats.boundary_compacted_edges = boundary_.CompactedEdges();
  stats.boundary_resident_bytes = boundary_.ResidentBytes();
  return stats;
}

std::uint64_t ShardedDetectionService::EdgesProcessed() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->EdgesProcessed();
  return total;
}

std::uint64_t ShardedDetectionService::AlertsDelivered() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->AlertsDelivered();
  return total;
}

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / name).string();
}

std::uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

bool AllDigits(std::string_view s) {
  return !s.empty() &&
         s.find_first_not_of("0123456789") == std::string_view::npos;
}

bool ParseEpochSuffix(std::string_view s, std::uint64_t* epoch) {
  if (!AllDigits(s) || s.size() > 19) return false;  // u64 max is 20 digits
  std::uint64_t value = 0;
  for (const char c : s) value = value * 10 + static_cast<std::uint64_t>(c - '0');
  *epoch = value;
  return true;
}

/// Strict parser for epoch-stamped checkpoint artifact names: matches
/// exactly `shard-<digits>.snapshot-<digits>`, `shard-<digits>.delta-
/// <digits>`, `boundary.tail-<digits>` and `boundary.index-<digits>`,
/// yielding the epoch. Legacy unstamped names (shard-<i>.snapshot,
/// boundary.index) and every foreign file — client spill buffers, ingest
/// seqmaps, editor droppings — never match, so sharing the directory with
/// non-checkpoint files neither perturbs epoch numbering nor gets them
/// garbage-collected. The single classifier serves both the GC and the
/// epoch scanner: if they ever disagreed, NextEpochForDir could hand out
/// an epoch whose crashed files survived GC — the stale-bytes collision
/// the stamping exists to prevent.
bool ParseEpochStampedArtifact(const std::string& name,
                               std::uint64_t* epoch) {
  std::string_view v(name);
  constexpr std::string_view kTail = "boundary.tail-";
  constexpr std::string_view kIndex = "boundary.index-";
  constexpr std::string_view kShard = "shard-";
  if (v.substr(0, kTail.size()) == kTail) {
    return ParseEpochSuffix(v.substr(kTail.size()), epoch);
  }
  if (v.substr(0, kIndex.size()) == kIndex) {
    return ParseEpochSuffix(v.substr(kIndex.size()), epoch);
  }
  if (v.substr(0, kShard.size()) == kShard) {
    v.remove_prefix(kShard.size());
    const std::size_t dot = v.find('.');
    if (dot == std::string_view::npos || !AllDigits(v.substr(0, dot))) {
      return false;
    }
    v.remove_prefix(dot + 1);
    for (const std::string_view kind : {std::string_view("snapshot-"),
                                        std::string_view("delta-")}) {
      if (v.substr(0, kind.size()) == kind) {
        return ParseEpochSuffix(v.substr(kind.size()), epoch);
      }
    }
  }
  return false;
}

/// First epoch a chain-less save into `dir` may use. Epoch numbers must
/// never collide with anything already in the directory: a fresh service
/// saving over an older higher-epoch manifest at epoch 1 would rename new
/// bases over that manifest's stamped files, reintroducing the
/// old-manifest-replays-chain-onto-new-base corruption the stamping
/// exists to prevent. The manifest gives the honest answer when readable;
/// the file scan also covers torn manifests and orphaned higher-epoch
/// files.
std::uint64_t NextEpochForDir(const std::string& dir) {
  std::uint64_t next = 1;
  ShardManifest existing;
  if (ReadShardManifest(dir, &existing).ok()) {
    next = existing.epoch + 1;
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t epoch = 0;
    if (ParseEpochStampedArtifact(name, &epoch)) {
      next = std::max<std::uint64_t>(next, epoch + 1);
    }
  }
  return next;
}

}  // namespace

Status ShardedDetectionService::SaveFull(const std::string& dir,
                                         std::uint64_t epoch,
                                         SaveInfo* info) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  // Any failure below leaves the previous manifest in charge; drop the
  // cached chain so the next save starts clean rather than extending a
  // chain whose on-disk tail may not exist.
  chain_dir_.clear();

  // Placement freeze: no partition may change owner between "which worker
  // saves pid" below and the placement rows recorded in the manifest, or
  // the manifest would describe a fleet that never existed.
  std::lock_guard<std::mutex> rebalance_lock(rebalance_mutex_);

  const std::size_t num_partitions = map_.num_partitions();
  ShardManifest manifest;
  // Checkpoint files are per PARTITION (the stable unit); `num_shards` in
  // the manifest is the partition count, which equals the worker count for
  // every fleet built before rebalancing existed — old directories restore
  // unchanged.
  manifest.num_shards = static_cast<std::uint32_t>(num_partitions);
  manifest.semantics = semantics_;
  manifest.epoch = epoch;
  manifest.base_epoch = epoch;
  manifest.files.reserve(num_partitions);
  std::uint64_t bytes = 0;
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    // Epoch-stamped names, never reused: a crash between these renames
    // and the manifest write leaves the PREVIOUS manifest in charge, and
    // that manifest must keep referencing its own (untouched) bases — a
    // shared name would let it silently replay its delta chain onto this
    // newer base (every CRC valid, a state no checkpoint ever held).
    const std::string name = ShardSnapshotFileName(pid, epoch);
    const std::string path = JoinPath(dir, name);
    // A full save is the checkpoint baseline: it arms per-partition delta
    // tracking so the next save can be incremental.
    SPADE_RETURN_NOT_OK(workers_[map_.ShardOf(pid)]->SavePartition(
        pid, path, /*start_delta_tracking=*/true));
    bytes += FileSizeOrZero(path);
    manifest.files.push_back(name);
  }
  // Sparse placement rows: only partitions living away from their default
  // worker (pid % num_workers) are recorded, so a never-rebalanced fleet
  // writes a byte-identical manifest to the pre-rebalance format.
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    const std::size_t shard = map_.ShardOf(pid);
    if (shard != pid % workers_.size()) {
      manifest.placement.push_back({static_cast<std::uint32_t>(pid),
                                    static_cast<std::uint32_t>(shard)});
    }
  }
  manifest.boundary_file = BoundaryIndexFileName(epoch);
  const std::string boundary_path = JoinPath(dir, manifest.boundary_file);
  // Save() anchors the persist cursor at exactly the prefix the file
  // holds, so the first tail continues seamlessly. The format out-param
  // lands in the manifest: a v2 (compacted) base announces itself so a
  // reader rejects it up front instead of mid-parse.
  std::uint32_t boundary_format = 1;
  SPADE_RETURN_NOT_OK(boundary_.Save(boundary_path, &boundary_persist_cursor_,
                                     &boundary_format));
  manifest.boundary_format = boundary_format;
  bytes += FileSizeOrZero(boundary_path);
  // Manifest last and atomically: a crash anywhere above leaves either no
  // manifest (kNotFound) or the previous epoch's manifest (clean restore
  // to the previous checkpoint) — never a torn directory in charge.
  SPADE_RETURN_NOT_OK(WriteShardManifest(dir, manifest));
  bytes += FileSizeOrZero(ShardManifestPath(dir));

  chain_dir_ = dir;
  chain_ = std::move(manifest);
  chain_base_bytes_ = bytes;
  chain_delta_bytes_ = 0;
  RemoveStaleChainFiles(dir);
  if (info != nullptr) {
    info->delta = false;
    info->epoch = epoch;
    info->bytes_written = bytes;
    info->chain_length = 0;
    info->delta_edges = 0;
  }
  return Status::OK();
}

Status ShardedDetectionService::SaveDeltaEpoch(const std::string& dir,
                                               SaveInfo* info) {
  std::lock_guard<std::mutex> rebalance_lock(rebalance_mutex_);
  const std::size_t num_partitions = map_.num_partitions();
  const std::uint64_t epoch = chain_.epoch + 1;
  ShardManifest manifest = chain_;  // extend the cached chain
  std::uint64_t bytes = 0;
  std::size_t delta_edges = 0;
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    const std::string name = ShardDeltaFileName(pid, epoch);
    ShardWorker::DeltaSaveInfo shard_info;
    // The segment tag is the PARTITION id — segments follow the partition
    // across moves, so a chain saved under three different placements
    // still validates and replays as one per-partition history.
    SPADE_RETURN_NOT_OK(workers_[map_.ShardOf(pid)]->SavePartitionDelta(
        pid, JoinPath(dir, name), static_cast<std::uint32_t>(pid),
        chain_.epoch, epoch, &shard_info));
    bytes += shard_info.bytes;
    delta_edges += shard_info.edges;
    manifest.deltas.push_back(
        {epoch, static_cast<std::uint32_t>(pid), name});
  }
  // Refresh the placement rows: the manifest must describe the fleet at
  // ITS epoch, and partitions may have moved since the base was written.
  manifest.placement.clear();
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    const std::size_t shard = map_.ShardOf(pid);
    if (shard != pid % workers_.size()) {
      manifest.placement.push_back({static_cast<std::uint32_t>(pid),
                                    static_cast<std::uint32_t>(shard)});
    }
  }
  const std::string tail_name = BoundaryTailFileName(epoch);
  std::uint64_t tail_bytes = 0;
  SPADE_RETURN_NOT_OK(boundary_.SaveTail(JoinPath(dir, tail_name), epoch,
                                         &boundary_persist_cursor_,
                                         &tail_bytes));
  bytes += tail_bytes;
  manifest.boundary_tails.push_back({epoch, tail_name});
  manifest.epoch = epoch;
  SPADE_RETURN_NOT_OK(WriteShardManifest(dir, manifest));
  bytes += FileSizeOrZero(ShardManifestPath(dir));

  chain_ = std::move(manifest);
  chain_delta_bytes_ += bytes;
  if (info != nullptr) {
    info->delta = true;
    info->epoch = epoch;
    info->bytes_written = bytes;
    info->chain_length = chain_.ChainLength();
    info->delta_edges = delta_edges;
  }
  return Status::OK();
}

void ShardedDetectionService::RemoveStaleChainFiles(
    const std::string& dir) const {
  std::unordered_set<std::string> referenced(chain_.files.begin(),
                                             chain_.files.end());
  referenced.insert(chain_.boundary_file);
  for (const DeltaSegmentRef& ref : chain_.deltas) referenced.insert(ref.file);
  for (const BoundaryTailRef& ref : chain_.boundary_tails) {
    referenced.insert(ref.file);
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    // Only epoch-stamped artifacts are ever collected, so legacy
    // unstamped files — and foreign files sharing the directory — survive
    // untouched.
    std::uint64_t epoch = 0;
    if (ParseEpochStampedArtifact(name, &epoch) &&
        referenced.count(name) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

Status ShardedDetectionService::SaveState(const std::string& dir,
                                          SaveMode mode, SaveInfo* info) {
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  if (info != nullptr) *info = SaveInfo{};
  const bool chain_active = !chain_dir_.empty() && chain_dir_ == dir;
  if (mode == SaveMode::kDelta && !chain_active) {
    return Status::FailedPrecondition(
        "SaveState(kDelta): no active delta chain in " + dir +
        " (write a full checkpoint there first)");
  }
  bool want_delta = chain_active && mode != SaveMode::kFull;
  bool compacted = false;
  if (want_delta && mode == SaveMode::kAuto) {
    // Compaction policy: fold the chain back into a fresh base when it is
    // long (restore replay cost) or heavy relative to the base (directory
    // byte overhead). Byte accounting uses the chain as written so far —
    // the decision lags one epoch, which keeps it free of a pre-pass over
    // every worker's log.
    const bool too_long = chain_.ChainLength() >= options_.checkpoint.max_chain_length;
    const bool too_heavy =
        static_cast<double>(chain_delta_bytes_) >
        options_.checkpoint.max_delta_base_ratio *
            static_cast<double>(std::max<std::uint64_t>(1, chain_base_bytes_));
    if (too_long || too_heavy) {
      want_delta = false;
      compacted = true;
    }
  }
  const std::uint64_t epoch =
      chain_active ? chain_.epoch + 1 : NextEpochForDir(dir);
  if (want_delta) {
    const Status s = SaveDeltaEpoch(dir, info);
    if (s.ok()) return s;
    // A failed delta attempt may already have consumed some workers' logs
    // into segment files the manifest never adopted; extending the chain
    // after that would silently lose their records. Invalidate it — the
    // only safe continuation is a fresh base.
    chain_dir_.clear();
    // A worker whose delta log overflowed (or whose boundary cursor was
    // invalidated) reports kFailedPrecondition; in auto mode the right
    // response is the fallback the caller would have to do anyway.
    if (mode == SaveMode::kDelta ||
        s.code() != StatusCode::kFailedPrecondition) {
      return s;
    }
    compacted = true;
  }
  const Status s = SaveFull(dir, epoch, info);
  if (s.ok() && info != nullptr) info->compacted = compacted;
  return s;
}

Status ShardedDetectionService::RestoreState(const std::string& dir,
                                             RestoreInfo* info) {
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  const auto restore_start = std::chrono::steady_clock::now();
  const std::size_t num_partitions = map_.num_partitions();
  ShardManifest manifest;
  SPADE_RETURN_NOT_OK(ReadShardManifest(dir, &manifest));
  if (manifest.num_shards != num_partitions) {
    return Status::FailedPrecondition(
        "sharded snapshot has " + std::to_string(manifest.num_shards) +
        " partitions but the service has " +
        std::to_string(num_partitions));
  }
  // Resolve the checkpoint's placement: default home unless a sparse
  // placement row overrides it. A placement that the fixed fleet cannot
  // hold is rejected up front (Phase 1 has no side effects yet).
  std::vector<std::size_t> target_shard(num_partitions);
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    target_shard[pid] = pid % workers_.size();
  }
  for (const auto& [pid, shard] : manifest.placement) {
    if (pid >= num_partitions || shard >= workers_.size()) {
      return Status::FailedPrecondition(
          "sharded snapshot places partition " + std::to_string(pid) +
          " on shard " + std::to_string(shard) +
          ", outside this service's fleet");
    }
    target_shard[pid] = shard;
  }
  if (!options_.rebalance.enabled) {
    for (std::size_t pid = 0; pid < num_partitions; ++pid) {
      if (target_shard[pid] != pid % workers_.size()) {
        return Status::FailedPrecondition(
            "snapshot was taken mid-rebalance (partition " +
            std::to_string(pid) + " on shard " +
            std::to_string(target_shard[pid]) +
            ") but this service has rebalancing off");
      }
    }
  }

  const std::uint64_t manifest_epoch = manifest.epoch;

  // ---- Phase 1: parse + CRC-check every file, no side effects. ----------
  // Bases first: a torn base is unrecoverable (fail cleanly, leaving the
  // running fleet untouched).
  std::vector<ShardWorker::RestorePlan> plans(num_partitions);
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    SPADE_RETURN_NOT_OK(LoadSnapshot(JoinPath(dir, manifest.files[pid]),
                                     &plans[pid].graph, &plans[pid].state,
                                     &plans[pid].state_present));
  }
  BoundaryEdgeIndex::FileData boundary_base;
  const bool has_boundary = !manifest.boundary_file.empty();
  if (has_boundary) {
    SPADE_RETURN_NOT_OK(
        BoundaryEdgeIndex::ReadFile(JoinPath(dir, manifest.boundary_file),
                                    num_partitions, &boundary_base));
  }
  // Chain epochs, oldest first: stop at the first epoch with any torn or
  // corrupt file. Everything before it is durable by construction (those
  // files were fully written before the later manifest was published), so
  // the longest valid prefix IS the last durable checkpoint.
  std::vector<BoundaryEdgeIndex::FileData> tails;
  std::uint64_t restored_epoch = manifest.base_epoch;
  std::size_t delta_edges = 0;
  for (std::uint64_t e = manifest.base_epoch + 1; e <= manifest.epoch; ++e) {
    std::vector<DeltaSegment> epoch_segments(num_partitions);
    bool epoch_ok = true;
    for (std::size_t pid = 0; pid < num_partitions && epoch_ok; ++pid) {
      const DeltaSegmentRef& ref =
          manifest
              .deltas[(e - manifest.base_epoch - 1) * num_partitions + pid];
      DeltaSegment segment;
      const Status s = ReadDeltaSegment(JoinPath(dir, ref.file), &segment);
      epoch_ok = s.ok() && segment.shard == pid && segment.epoch == e &&
                 segment.prev_epoch == e - 1;
      if (epoch_ok) epoch_segments[pid] = std::move(segment);
    }
    BoundaryEdgeIndex::FileData tail;
    if (epoch_ok && has_boundary) {
      const BoundaryTailRef& ref =
          manifest.boundary_tails[e - manifest.base_epoch - 1];
      epoch_ok = BoundaryEdgeIndex::ReadTailFile(JoinPath(dir, ref.file),
                                                 num_partitions, e, &tail)
                     .ok();
    }
    if (!epoch_ok) {
      SPADE_LOG_WARNING() << "RestoreState: chain torn at epoch " << e
                          << "; recovering to durable epoch " << (e - 1);
      break;
    }
    for (std::size_t pid = 0; pid < num_partitions; ++pid) {
      delta_edges += epoch_segments[pid].NumEdges();
      plans[pid].segments.push_back(std::move(epoch_segments[pid]));
    }
    if (has_boundary) tails.push_back(std::move(tail));
    restored_epoch = e;
  }

  // ---- Phase 2: install. Everything applied below passed validation. ----
  // Drop the stitched snapshot BEFORE touching any detector: it described
  // the pre-restore fleet, and it must not survive the swap (a stale
  // stitched read over replaced detectors would be the one overclaim the
  // insert-only staleness argument cannot excuse). The stitch/boundary
  // counters reset with it — stats() must describe the restored run.
  {
    std::lock_guard<std::mutex> stitch_lock(stitch_mutex_);
    last_stitched_members_.clear();
    last_stitched_density_ = -1.0;
    StoreStitched(nullptr);
    stitch_passes_.store(0, std::memory_order_relaxed);
    stitched_alerts_.store(0, std::memory_order_relaxed);
  }
  // Chain replay is the dominant restore cost (it re-applies every delta
  // edge through the full reorder path), and each partition's plan touches
  // only its owner's detector — so replay partition chains in parallel.
  // Two partitions on the same worker serialize on its detector mutex; the
  // result is bit-identical to a serial replay (restore_threads = 1)
  // because nothing else is shared between the replays.
  {
    // Placement install + replay run under one rebalance hold: a steal
    // landing between "move pid to its checkpoint shard" and "replay pid
    // there" would replay into the wrong worker (kNotFound).
    std::lock_guard<std::mutex> rebalance_lock(rebalance_mutex_);
    for (std::size_t pid = 0; pid < num_partitions; ++pid) {
      const std::size_t from = map_.ShardOf(pid);
      if (from == target_shard[pid]) continue;
      std::unique_ptr<ShardWorker::Partition> part =
          workers_[from]->DetachPartition(pid);
      if (part == nullptr) {
        return Status::Internal(
            "RestoreState: partition " + std::to_string(pid) +
            " not owned by its mapped shard " + std::to_string(from));
      }
      workers_[target_shard[pid]]->AttachPartition(std::move(part));
      map_.Publish(pid, target_shard[pid]);
    }
    const std::size_t pool =
        options_.restore_threads == 0
            ? std::min(workers_.size(), num_partitions)
            : std::min(options_.restore_threads, num_partitions);
    std::vector<Status> statuses(num_partitions, Status::OK());
    if (pool <= 1) {
      for (std::size_t pid = 0; pid < num_partitions; ++pid) {
        statuses[pid] = workers_[map_.ShardOf(pid)]->RestorePartitionChain(
            pid, std::move(plans[pid]));
      }
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (std::size_t t = 0; t < pool; ++t) {
        threads.emplace_back([this, num_partitions, &next, &plans,
                              &statuses] {
          for (;;) {
            const std::size_t pid =
                next.fetch_add(1, std::memory_order_relaxed);
            if (pid >= num_partitions) break;
            statuses[pid] =
                workers_[map_.ShardOf(pid)]->RestorePartitionChain(
                    pid, std::move(plans[pid]));
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
    for (const Status& s : statuses) SPADE_RETURN_NOT_OK(s);
  }
  {
    std::lock_guard<std::mutex> stitch_lock(stitch_mutex_);
    if (!has_boundary) {
      // Pre-stitching snapshot: no boundary record survives; stitching
      // resumes as cross-shard traffic arrives.
      boundary_.Clear(&boundary_persist_cursor_);
    } else {
      // The epoch bump inside AdoptBuckets forces the next stitch pass to
      // rebuild its per-vertex aggregate; tails append under the same
      // cursor so the next SaveTail persists only post-restore records.
      boundary_.AdoptBuckets(std::move(boundary_base),
                             &boundary_persist_cursor_);
      for (BoundaryEdgeIndex::FileData& tail : tails) {
        boundary_.AppendBuckets(tail, &boundary_persist_cursor_);
      }
    }
  }

  // Resume the chain in this directory when it has an epoch history (v3);
  // legacy v1/v2 directories restart with a full save.
  if (manifest.epoch >= 1) {
    chain_dir_ = dir;
    chain_ = std::move(manifest);
    if (restored_epoch < chain_.epoch) {
      // Truncate the cached chain to the durable prefix; the dropped
      // epochs' files are dead and will be overwritten or GC'd.
      chain_.epoch = restored_epoch;
      chain_.deltas.resize((restored_epoch - chain_.base_epoch) *
                           num_partitions);
      if (has_boundary) {
        chain_.boundary_tails.resize(restored_epoch - chain_.base_epoch);
      }
    }
    chain_base_bytes_ = 0;
    for (const std::string& f : chain_.files) {
      chain_base_bytes_ += FileSizeOrZero(JoinPath(dir, f));
    }
    chain_delta_bytes_ = 0;
    for (const DeltaSegmentRef& ref : chain_.deltas) {
      chain_delta_bytes_ += FileSizeOrZero(JoinPath(dir, ref.file));
    }
    if (restored_epoch < manifest_epoch) {
      // Collect the torn epochs' files now (best effort): leaving them
      // would let a later save reuse their epoch numbers while the
      // on-disk manifest still references the old bytes — a crash in
      // that window would splice two timelines into one restorable (and
      // wrong) chain.
      RemoveStaleChainFiles(dir);
    }
  } else {
    chain_dir_.clear();
  }
  if (info != nullptr) {
    info->manifest_epoch = manifest_epoch;
    info->restored_epoch = restored_epoch;
    info->delta_edges_replayed = delta_edges;
    info->truncated_chain = restored_epoch < manifest_epoch;
    info->restore_millis = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() -
                               restore_start)
                               .count();
  }
  return Status::OK();
}

Status ShardedDetectionService::ApplyChainEpoch(
    const std::string& dir, std::uint64_t target_epoch,
    std::chrono::milliseconds drain_timeout,
    std::uint64_t* edges_replayed) {
  std::lock_guard<std::mutex> save_lock(save_mutex_);
  const std::size_t num_partitions = map_.num_partitions();
  ShardManifest manifest;
  SPADE_RETURN_NOT_OK(ReadShardManifest(dir, &manifest));
  if (manifest.num_shards != num_partitions) {
    return Status::FailedPrecondition(
        "ApplyChainEpoch: snapshot has " +
        std::to_string(manifest.num_shards) +
        " partitions but the service has " +
        std::to_string(num_partitions));
  }
  if (target_epoch <= manifest.base_epoch || target_epoch > manifest.epoch) {
    return Status::OutOfRange(
        "ApplyChainEpoch: epoch " + std::to_string(target_epoch) +
        " is not a delta epoch of " + dir + " (chain covers (" +
        std::to_string(manifest.base_epoch) + ", " +
        std::to_string(manifest.epoch) + "])");
  }

  // ---- Phase 1: parse + CRC-check the epoch's files, no side effects. ----
  const std::size_t epoch_row =
      static_cast<std::size_t>(target_epoch - manifest.base_epoch - 1);
  std::vector<DeltaSegment> segments(num_partitions);
  for (std::size_t pid = 0; pid < num_partitions; ++pid) {
    const DeltaSegmentRef& ref =
        manifest.deltas[epoch_row * num_partitions + pid];
    DeltaSegment segment;
    SPADE_RETURN_NOT_OK(ReadDeltaSegment(JoinPath(dir, ref.file), &segment));
    if (segment.shard != pid || segment.epoch != target_epoch ||
        segment.prev_epoch != target_epoch - 1) {
      return Status::IOError(
          "ApplyChainEpoch: segment " + ref.file +
          " does not advance partition " + std::to_string(pid) +
          " from epoch " + std::to_string(target_epoch - 1));
    }
    segments[pid] = std::move(segment);
  }
  const bool has_boundary = !manifest.boundary_file.empty();
  BoundaryEdgeIndex::FileData tail;
  if (has_boundary) {
    const BoundaryTailRef& ref = manifest.boundary_tails[epoch_row];
    SPADE_RETURN_NOT_OK(BoundaryEdgeIndex::ReadTailFile(
        JoinPath(dir, ref.file), num_partitions, target_epoch, &tail));
  }

  // ---- Phase 2: replay. Everything below passed validation. -------------
  std::uint64_t replayed = 0;
  {
    // Placement freeze: the owner looked up for each segment must still
    // own the partition when the replay runs on it.
    std::lock_guard<std::mutex> rebalance_lock(rebalance_mutex_);
    for (std::size_t pid = 0; pid < num_partitions; ++pid) {
      replayed += segments[pid].NumEdges();
      SPADE_RETURN_NOT_OK(
          workers_[map_.ShardOf(pid)]->ReplayPartitionSegment(
              pid, segments[pid], drain_timeout));
    }
  }
  {
    std::lock_guard<std::mutex> stitch_lock(stitch_mutex_);
    if (has_boundary) {
      boundary_.AppendBuckets(tail, &boundary_persist_cursor_);
    }
  }
  // The cached save chain no longer matches the workers' (now replayed-
  // ahead) delta logs; drop it so the next SaveState writes a fresh full
  // base instead of extending a chain that would silently skip the
  // replayed epochs.
  chain_dir_.clear();
  if (edges_replayed != nullptr) *edges_replayed = replayed;
  return Status::OK();
}

}  // namespace spade
