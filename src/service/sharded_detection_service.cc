#include "service/sharded_detection_service.h"

#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "storage/sharded_snapshot.h"

namespace spade {

PartitionFn HashOfSourcePartitioner() {
  return [](const Edge& e) -> std::size_t {
    // splitmix64 finalizer: adjacent vertex ids land on unrelated shards.
    std::uint64_t x = static_cast<std::uint64_t>(e.src);
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  };
}

PartitionFn TenantPartitioner(VertexId vertices_per_tenant) {
  SPADE_CHECK(vertices_per_tenant > 0);
  return [vertices_per_tenant](const Edge& e) -> std::size_t {
    return e.src / vertices_per_tenant;
  };
}

ShardedDetectionService::ShardedDetectionService(
    std::vector<Spade> shards, ShardAlertFn on_alert,
    ShardedDetectionServiceOptions options)
    : options_(std::move(options)), on_alert_(std::move(on_alert)) {
  SPADE_CHECK(!shards.empty());
  if (!options_.partitioner) options_.partitioner = HashOfSourcePartitioner();
  semantics_ = shards.front().semantics_name();
  workers_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    FraudAlertFn shard_alert;
    if (on_alert_) {
      shard_alert = [this, i](const Community& c) { on_alert_(i, c); };
    }
    workers_.push_back(std::make_unique<ShardWorker>(
        std::move(shards[i]), std::move(shard_alert), options_.shard));
  }
}

ShardedDetectionService::~ShardedDetectionService() { Stop(); }

std::size_t ShardedDetectionService::ShardOf(const Edge& raw_edge) const {
  return options_.partitioner(raw_edge) % workers_.size();
}

Status ShardedDetectionService::Submit(const Edge& raw_edge) {
  return workers_[ShardOf(raw_edge)]->Submit(raw_edge);
}

Status ShardedDetectionService::SubmitBatch(std::span<const Edge> raw_edges,
                                            std::size_t* enqueued) {
  if (enqueued != nullptr) *enqueued = 0;
  if (workers_.size() == 1) {
    const Status s = workers_[0]->SubmitBatch(raw_edges);
    if (s.ok() && enqueued != nullptr) *enqueued = raw_edges.size();
    return s;
  }
  std::vector<std::vector<Edge>> parts(workers_.size());
  for (const Edge& e : raw_edges) parts[ShardOf(e)].push_back(e);
  Status first_error = Status::OK();
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (parts[s].empty()) continue;
    const Status status = workers_[s]->SubmitBatch(parts[s]);
    if (status.ok()) {
      if (enqueued != nullptr) *enqueued += parts[s].size();
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

void ShardedDetectionService::Drain() {
  for (auto& w : workers_) w->Drain();
}

void ShardedDetectionService::Stop() {
  for (auto& w : workers_) w->Stop();
}

std::pair<std::size_t, std::shared_ptr<const Community>>
ShardedDetectionService::ArgmaxSnapshot() const {
  // One load per shard; the winning snapshot is returned from the same
  // pass (re-loading after the argmax could observe a newer, lower-density
  // republication and break the "densest over all snapshots" contract).
  std::size_t best = 0;
  std::shared_ptr<const Community> best_snap;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    auto snap = workers_[i]->CurrentSnapshot();
    if (snap && (!best_snap || snap->density > best_snap->density)) {
      best_snap = std::move(snap);
      best = i;
    }
  }
  return {best, std::move(best_snap)};
}

std::size_t ShardedDetectionService::TopShard() const {
  return ArgmaxSnapshot().first;
}

Community ShardedDetectionService::CurrentCommunity() const {
  const auto [shard, snap] = ArgmaxSnapshot();
  return snap ? *snap : Community{};
}

std::shared_ptr<const Community> ShardedDetectionService::ShardSnapshot(
    std::size_t shard) const {
  SPADE_CHECK(shard < workers_.size());
  return workers_[shard]->CurrentSnapshot();
}

Community ShardedDetectionService::ShardCommunity(std::size_t shard) const {
  SPADE_CHECK(shard < workers_.size());
  return workers_[shard]->CurrentCommunity();
}

ShardedServiceStats ShardedDetectionService::GetStats() const {
  ShardedServiceStats stats;
  stats.shard_edges.reserve(workers_.size());
  stats.shard_alerts.reserve(workers_.size());
  stats.shard_queue_depth.reserve(workers_.size());
  for (const auto& w : workers_) {
    const std::uint64_t edges = w->EdgesProcessed();
    const std::uint64_t alerts = w->AlertsDelivered();
    stats.edges_processed += edges;
    stats.alerts_delivered += alerts;
    stats.shard_edges.push_back(edges);
    stats.shard_alerts.push_back(alerts);
    stats.shard_detections.push_back(w->DetectionsRun());
    stats.shard_queue_depth.push_back(w->QueueDepth());
  }
  return stats;
}

std::uint64_t ShardedDetectionService::EdgesProcessed() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->EdgesProcessed();
  return total;
}

std::uint64_t ShardedDetectionService::AlertsDelivered() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->AlertsDelivered();
  return total;
}

Status ShardedDetectionService::SaveState(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  ShardManifest manifest;
  manifest.num_shards = static_cast<std::uint32_t>(workers_.size());
  manifest.semantics = semantics_;
  manifest.files.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string name = ShardSnapshotFileName(i);
    const std::string path = (std::filesystem::path(dir) / name).string();
    SPADE_RETURN_NOT_OK(workers_[i]->SaveState(path));
    manifest.files.push_back(name);
  }
  // Manifest last: a crashed save leaves no manifest, so a restore sees
  // kNotFound rather than a torn directory.
  return WriteShardManifest(dir, manifest);
}

Status ShardedDetectionService::RestoreState(const std::string& dir) {
  ShardManifest manifest;
  SPADE_RETURN_NOT_OK(ReadShardManifest(dir, &manifest));
  if (manifest.num_shards != workers_.size()) {
    return Status::FailedPrecondition(
        "sharded snapshot has " + std::to_string(manifest.num_shards) +
        " shards but the service has " + std::to_string(workers_.size()));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string path =
        (std::filesystem::path(dir) / manifest.files[i]).string();
    SPADE_RETURN_NOT_OK(workers_[i]->RestoreState(path));
  }
  return Status::OK();
}

}  // namespace spade
