// PartitionMap: the lock-free partition -> shard routing table behind
// work-stealing rebalance (DESIGN.md §10).
//
// The sharded service routes by a STABLE partition key (pid = routing key
// mod num_partitions) and then indirects through this map to find the
// worker that currently owns the partition. Each entry packs the owner
// shard and a move epoch into one 64-bit word:
//
//   [ epoch : 32 | shard : 32 ]
//
// Producers read the entry with one acquire load per chunk (ShardOf) —
// no lock, no RMW — so steady-state routing costs the same as the old
// `key % num_shards`. A partition move publishes the new owner with an
// epoch-bumped release store (Publish); there is exactly one writer at a
// time (the service's rebalance lock serializes moves), the epoch exists
// so observers can tell "same owner again" from "moved away and back"
// (A -> B -> A), which is what makes the forwarding protocol testable.
//
// Routing under a stale entry is SAFE, not just tolerated: an edge that
// lands on the old owner after the move finds the partition gone from the
// worker's ownership table and is forwarded to the current owner (see
// ShardWorker's forward backlog), so no edge is lost or double-applied.
// The map only has to be eventually consistent; the release/acquire pair
// makes a post-publish read see the new owner.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spade {

/// Lock-free partition -> current-shard table (see file comment).
class PartitionMap {
 public:
  /// One decoded entry.
  struct Entry {
    std::size_t shard = 0;
    std::uint32_t epoch = 0;  // number of Publish calls on this partition
  };

  /// Initial placement: partition pid starts on shard pid % num_shards, at
  /// epoch 0.
  PartitionMap(std::size_t num_partitions, std::size_t num_shards)
      : slots_(num_partitions == 0 ? 1 : num_partitions) {
    const std::size_t shards = num_shards == 0 ? 1 : num_shards;
    for (std::size_t pid = 0; pid < slots_.size(); ++pid) {
      slots_[pid].store(Pack(pid % shards, 0), std::memory_order_relaxed);
    }
  }

  PartitionMap(const PartitionMap&) = delete;
  PartitionMap& operator=(const PartitionMap&) = delete;

  std::size_t num_partitions() const { return slots_.size(); }

  /// Current owner shard of `pid` (the producer hot path: one acquire
  /// load, no RMW).
  std::size_t ShardOf(std::size_t pid) const {
    return static_cast<std::size_t>(
        slots_[pid].load(std::memory_order_acquire) & 0xffffffffull);
  }

  /// Owner + move epoch in one consistent read.
  Entry Read(std::size_t pid) const {
    const std::uint64_t word = slots_[pid].load(std::memory_order_acquire);
    return Entry{static_cast<std::size_t>(word & 0xffffffffull),
                 static_cast<std::uint32_t>(word >> 32)};
  }

  /// Publishes a new owner for `pid`, bumping its epoch; returns the new
  /// epoch. Single-writer (the caller's rebalance lock serializes moves);
  /// the release store pairs with ShardOf's acquire load.
  std::uint32_t Publish(std::size_t pid, std::size_t shard) {
    const std::uint64_t cur = slots_[pid].load(std::memory_order_relaxed);
    const std::uint32_t epoch = static_cast<std::uint32_t>(cur >> 32) + 1;
    slots_[pid].store(Pack(shard, epoch), std::memory_order_release);
    return epoch;
  }

 private:
  static std::uint64_t Pack(std::size_t shard, std::uint32_t epoch) {
    return (static_cast<std::uint64_t>(epoch) << 32) |
           (static_cast<std::uint64_t>(shard) & 0xffffffffull);
  }

  std::vector<std::atomic<std::uint64_t>> slots_;
};

}  // namespace spade
