// RouterScratch: reusable batch-partitioning arena for the sharded ingest
// path.
//
// ShardedDetectionService::SubmitBatch used to allocate a fresh
// vector<vector<Edge>> per call and evaluate the partitioner three times
// per edge (edge_key for routing plus two `home` calls for the boundary
// decision, re-done per part). RouterScratch replaces that with flat,
// call-to-call reusable arenas and a single partitioner pass:
//
//   * one evaluation of each partitioner function per edge — the computed
//     src/dst homes are reused for both the routing decision (when the
//     partitioner routes by source home, the common case) and the
//     boundary-edge decision;
//   * a stable counting sort groups the chunk by destination shard
//     directly into per-shard slab vectors (order within a shard equals
//     chunk order, preserving the per-producer FIFO contract) — the slab
//     is then moved into the worker's handoff ring, so each edge is copied
//     exactly once on the whole batched ingest path;
//   * boundary edges are grouped by ordered shard pair, so
//     BoundaryEdgeIndex::RecordBatch takes each pair's lock once per batch
//     instead of once per edge.
//
// A scratch instance is single-threaded (the service keeps one per
// producer thread via thread_local); its arenas grow to the largest chunk
// the thread ever partitions and are then reused allocation-free.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "service/boundary_index.h"

namespace spade {

struct Partitioner;

/// Reusable single-threaded partition scratch (see file comment).
class RouterScratch {
 public:
  RouterScratch() = default;

  RouterScratch(const RouterScratch&) = delete;
  RouterScratch& operator=(const RouterScratch&) = delete;

  /// Partitions `edges` over `num_shards` shards with one partitioner pass.
  /// Overwrites whatever the scratch held before; the spans returned by
  /// Part()/boundary_groups() are valid until the next Partition call.
  void Partition(const Partitioner& partitioner, std::size_t num_shards,
                 std::span<const Edge> edges);

  std::size_t num_shards() const { return num_shards_; }

  /// Shard `s`'s slice of the last partitioned chunk, in chunk order.
  std::span<const Edge> Part(std::size_t shard) const {
    return parts_[shard];
  }

  /// Takes ownership of shard `s`'s slab (for the move-through handoff);
  /// Part(shard) is empty afterwards.
  std::vector<Edge> TakePart(std::size_t shard) {
    return std::move(parts_[shard]);
  }

  /// Boundary edges of the last chunk grouped by ordered (src_home,
  /// dst_home) pair, for BoundaryEdgeIndex::RecordBatch.
  std::span<const BoundaryEdgeIndex::PairGroup> boundary_groups() const {
    return groups_;
  }

  /// Boundary edges in the last chunk (diagnostics).
  std::size_t num_boundary_edges() const { return boundary_edges_.size(); }

 private:
  std::size_t num_shards_ = 0;
  std::vector<std::uint32_t> shard_of_;   // per input edge
  std::vector<std::size_t> counts_;       // per shard
  std::vector<std::vector<Edge>> parts_;  // per-shard slabs, chunk order
  // Boundary staging: (pair bucket, input index), stably sorted by bucket.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> boundary_keys_;
  std::vector<Edge> boundary_edges_;      // grouped by pair
  std::vector<BoundaryEdgeIndex::PairGroup> groups_;
};

}  // namespace spade
