// RouterScratch: reusable batch-partitioning arena for the sharded ingest
// path.
//
// ShardedDetectionService::SubmitBatch used to allocate a fresh
// vector<vector<Edge>> per call. RouterScratch replaces that with flat,
// call-to-call reusable arenas and a single partitioner pass:
//
//   * one evaluation of the routing function per edge (the boundary
//     decision no longer lives on the router — workers record boundary
//     edges from their apply path, at the applied semantic weight);
//   * a stable counting sort groups the chunk by destination shard
//     directly into per-shard slab vectors (order within a shard equals
//     chunk order, preserving the per-producer FIFO contract) — the slab
//     is then moved into the worker's handoff ring, so each edge is copied
//     exactly once on the whole batched ingest path.
//
// A scratch instance is single-threaded (the service keeps one per
// producer thread via thread_local); its arenas grow to the largest chunk
// the thread ever partitions and are then reused allocation-free.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/slab_pool.h"
#include "graph/types.h"

namespace spade {

struct Partitioner;
class PartitionMap;

/// Reusable single-threaded partition scratch (see file comment).
class RouterScratch {
 public:
  RouterScratch() = default;

  RouterScratch(const RouterScratch&) = delete;
  RouterScratch& operator=(const RouterScratch&) = delete;

  /// Partitions `edges` over `num_shards` shards with one partitioner pass.
  /// Overwrites whatever the scratch held before; the spans returned by
  /// Part() are valid until the next Partition call.
  void Partition(const Partitioner& partitioner, std::size_t num_shards,
                 std::span<const Edge> edges);

  /// Rebalance-aware variant: routes by STABLE partition key (reduced
  /// modulo map.num_partitions()) and indirects through `map` to the
  /// partition's current owner shard — the reads that make partition moves
  /// invisible to producers. `pool` (optional) refills slab storage that
  /// TakePart handed away, so steady-state batched ingest recycles worker-
  /// consumed slabs instead of allocating fresh ones.
  void Partition(const Partitioner& partitioner, const PartitionMap& map,
                 std::size_t num_shards, std::span<const Edge> edges,
                 SlabPool* pool = nullptr);

  std::size_t num_shards() const { return num_shards_; }

  /// Shard `s`'s slice of the last partitioned chunk, in chunk order.
  std::span<const Edge> Part(std::size_t shard) const {
    return parts_[shard];
  }

  /// Takes ownership of shard `s`'s slab (for the move-through handoff);
  /// Part(shard) is empty afterwards.
  std::vector<Edge> TakePart(std::size_t shard) {
    return std::move(parts_[shard]);
  }

 private:
  std::size_t num_shards_ = 0;
  std::vector<std::uint32_t> shard_of_;   // per input edge
  std::vector<std::size_t> counts_;       // per shard
  std::vector<std::vector<Edge>> parts_;  // per-shard slabs, chunk order
};

}  // namespace spade
