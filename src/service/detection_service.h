// DetectionService: the deployment loop of the paper's Figure 1 as a
// thread-safe component — transaction producers submit edges from any
// thread; a background worker drains them through Spade (edge grouping on)
// and notifies moderators whenever the detected community changes.
//
// The service owns the Spade instance. Producers never block on
// reordering; submissions queue under a small mutex and the worker applies
// them in arrival order, so all single-threaded correctness guarantees of
// the engine carry over unchanged.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"

namespace spade {

/// Invoked from the worker thread after a flush whose community differs
/// from the previously reported one.
using FraudAlertFn = std::function<void(const Community&)>;

/// Service configuration.
struct DetectionServiceOptions {
  /// Detect (and possibly alert) after at most this many applied edges even
  /// if no urgent edge forced a flush.
  std::size_t detect_every = 256;
  /// Bound on the submission queue; Submit fails fast beyond it.
  std::size_t max_queue = 1 << 20;
};

/// Thread-safe streaming front-end over one Spade detector.
class DetectionService {
 public:
  /// Takes ownership of a fully built detector (graph loaded, semantics
  /// installed). The worker starts immediately.
  DetectionService(Spade spade, FraudAlertFn on_alert,
                   DetectionServiceOptions options = {});

  /// Stops the worker, draining queued edges first.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Enqueues one transaction; callable from any thread. Fails with
  /// kFailedPrecondition after Stop() and kOutOfRange when the queue is
  /// full (backpressure).
  Status Submit(const Edge& raw_edge);

  /// Blocks until every edge submitted before this call has been applied.
  void Drain();

  /// Drains, stops the worker and joins it. Idempotent.
  void Stop();

  /// Snapshot of the current community (blocks briefly on the worker lock).
  Community CurrentCommunity();

  /// Edges applied by the worker so far.
  std::uint64_t EdgesProcessed() const;

  /// Alerts delivered so far.
  std::uint64_t AlertsDelivered() const;

 private:
  void WorkerLoop();
  /// Detects and fires the alert callback when the community changed.
  void MaybeAlert();

  DetectionServiceOptions options_;
  FraudAlertFn on_alert_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // signals the worker
  std::condition_variable drain_cv_;  // signals Drain() waiters
  std::deque<Edge> queue_;
  bool stopping_ = false;

  // Worker-owned state (guarded by mutex_ only around detector access from
  // CurrentCommunity; the worker itself holds the lock while applying).
  Spade spade_;
  std::vector<VertexId> last_reported_;
  double last_density_ = -1.0;
  std::uint64_t processed_ = 0;
  std::uint64_t alerts_ = 0;
  std::size_t since_detect_ = 0;

  std::thread worker_;
};

}  // namespace spade
