// DetectionService: the deployment loop of the paper's Figure 1 as a
// thread-safe component — transaction producers submit edges from any
// thread; a background worker drains them through Spade (edge grouping on)
// and notifies moderators whenever the detected community changes.
//
// Since the sharded refactor this is a thin façade over one ShardWorker
// (see shard_worker.h for the lock-split pipeline and the
// snapshot-publication protocol); ShardedDetectionService composes N of the
// same workers behind a partitioner. The façade is kept because a huge
// amount of calling code only ever needs one shard.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "service/shard_worker.h"

namespace spade {

/// Thread-safe streaming front-end over one Spade detector.
class DetectionService {
 public:
  /// Takes ownership of a fully built detector (graph loaded, semantics
  /// installed). The worker starts immediately.
  DetectionService(Spade spade, FraudAlertFn on_alert,
                   DetectionServiceOptions options = {})
      : worker_(std::move(spade), std::move(on_alert), options) {}

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Enqueues one transaction; callable from any thread. Fails with
  /// kFailedPrecondition after Stop(); a full queue either fails with
  /// kOutOfRange or blocks, per DetectionServiceOptions::block_when_full.
  Status Submit(const Edge& raw_edge) { return worker_.Submit(raw_edge); }

  /// Bulk enqueue through the lock-free chunk handoff: one budget claim,
  /// one ring cell, at most one worker wakeup for the whole chunk. Without
  /// `accepted` the call is all-or-nothing; with it, `*accepted` reports
  /// the exact enqueued prefix even when backpressure splits or truncates
  /// the chunk (see ShardWorker::SubmitBatch).
  Status SubmitBatch(std::span<const Edge> raw_edges,
                     std::size_t* accepted = nullptr) {
    return worker_.SubmitBatch(raw_edges, accepted);
  }

  /// Blocks until every edge submitted before this call has been applied
  /// and is reflected by CurrentCommunity().
  void Drain() { worker_.Drain(); }

  /// Bounded-wait Drain: true when the snapshot became exact within
  /// `timeout`, false when the deadline passed with edges still in flight.
  bool DrainFor(std::chrono::milliseconds timeout) {
    return worker_.DrainFor(timeout);
  }

  /// Drains, stops the worker and joins it. Idempotent.
  void Stop() { worker_.Stop(); }

  /// Latest published community; never blocks on an in-flight apply.
  Community CurrentCommunity() const { return worker_.CurrentCommunity(); }

  /// Zero-copy variant: the published snapshot itself.
  std::shared_ptr<const Community> CurrentSnapshot() const {
    return worker_.CurrentSnapshot();
  }

  /// Edges applied by the worker so far (lock-free).
  std::uint64_t EdgesProcessed() const { return worker_.EdgesProcessed(); }

  /// Alerts delivered so far (lock-free).
  std::uint64_t AlertsDelivered() const { return worker_.AlertsDelivered(); }

  /// Persists / restores the detector state (drains first).
  Status SaveState(const std::string& path) {
    return worker_.SaveState(path);
  }
  Status RestoreState(const std::string& path) {
    return worker_.RestoreState(path);
  }

 private:
  ShardWorker worker_;
};

}  // namespace spade
