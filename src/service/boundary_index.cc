#include "service/boundary_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/checked_io.h"

namespace spade {

namespace {

constexpr std::uint64_t kBoundaryMagic = 0x53504144455F4249ULL;  // "SPADE_BI"
constexpr std::uint32_t kBoundaryVersion = 1;
constexpr std::uint64_t kTailMagic = 0x53504144455F4254ULL;  // "SPADE_BT"
constexpr std::uint32_t kTailVersion = 1;

void WriteEdge(storage::ChecksummedFileWriter* writer, const Edge& e) {
  writer->Write(e.src);
  writer->Write(e.dst);
  writer->Write(e.weight);
  writer->Write(e.ts);
}

bool ReadEdge(storage::ChecksummedFileReader* reader, Edge* e) {
  return reader->Read(&e->src) && reader->Read(&e->dst) &&
         reader->Read(&e->weight) && reader->Read(&e->ts);
}

/// Shared payload reader for base and tail files (they differ only in the
/// header): per-bucket counts + edges for `num_buckets` buckets.
Status ReadBuckets(storage::ChecksummedFileReader* reader,
                   std::size_t num_buckets,
                   std::vector<std::vector<Edge>>* buckets) {
  buckets->assign(num_buckets, {});
  for (std::size_t b = 0; b < num_buckets; ++b) {
    std::uint64_t count = 0;
    if (!reader->Read(&count)) {
      return Status::IOError("truncated boundary file: " + reader->path());
    }
    // Pre-allocation plausibility gate (see checked_io.h): 24 payload
    // bytes per edge record.
    if (reader->CountExceedsFile(count, 24)) {
      return Status::IOError("boundary bucket count exceeds the file size: " +
                             reader->path());
    }
    (*buckets)[b].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!ReadEdge(reader, &(*buckets)[b][i])) {
        return Status::IOError("truncated boundary file: " + reader->path());
      }
    }
  }
  return reader->VerifyTrailer();
}

}  // namespace

BoundaryEdgeIndex::BoundaryEdgeIndex(std::size_t num_shards)
    : num_shards_(num_shards), buckets_(num_shards * num_shards) {
  SPADE_CHECK(num_shards > 0);
}

void BoundaryEdgeIndex::Record(std::size_t src_home, std::size_t dst_home,
                               const Edge& edge) {
  SPADE_DCHECK(src_home < num_shards_ && dst_home < num_shards_);
  Bucket& bucket = buckets_[BucketOf(src_home, dst_home)];
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    bucket.edges.push_back(edge);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

void BoundaryEdgeIndex::RecordBatch(std::span<const PairGroup> groups) {
  std::uint64_t appended = 0;
  for (const PairGroup& group : groups) {
    if (group.edges.empty()) continue;
    SPADE_DCHECK(group.src_home < num_shards_ &&
                 group.dst_home < num_shards_);
    Bucket& bucket = buckets_[BucketOf(group.src_home, group.dst_home)];
    {
      std::lock_guard<std::mutex> lock(bucket.mutex);
      bucket.edges.insert(bucket.edges.end(), group.edges.begin(),
                          group.edges.end());
    }
    appended += group.edges.size();
  }
  if (appended > 0) total_.fetch_add(appended, std::memory_order_relaxed);
}

bool BoundaryEdgeIndex::FoldNewEdges(
    Cursor* cursor, std::unordered_map<VertexId, double>* weight) const {
  if (cursor->epoch.size() != buckets_.size()) {
    cursor->epoch.assign(buckets_.size(), 0);
    cursor->consumed.assign(buckets_.size(), 0);
  }
  // Pass 1: a bumped epoch anywhere (Clear/Load) invalidates the whole
  // aggregate — per-bucket contributions are not tracked separately, so the
  // only sound recovery is a full rebuild.
  bool rebuilt = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    if (cursor->epoch[b] != buckets_[b].epoch) {
      rebuilt = true;
      break;
    }
  }
  if (rebuilt) {
    weight->clear();
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::lock_guard<std::mutex> lock(buckets_[b].mutex);
      cursor->epoch[b] = buckets_[b].epoch;
      cursor->consumed[b] = 0;
    }
  }
  // Pass 2: fold only the suffix appended since the cursor's last visit.
  // Edges recorded between the passes are picked up here or next time;
  // either way exactly once, because buckets are append-only within an
  // epoch. Positions are logical (append-history) indices: an evicted-
  // before-fold prefix (consumed < start) was never folded and never will
  // be — it expired unseen, which is exactly the eviction contract.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    const Bucket& bucket = buckets_[b];
    const std::vector<Edge>& edges = bucket.edges;
    const std::size_t from_logical =
        std::max(cursor->consumed[b], bucket.start);
    for (std::size_t i = from_logical - bucket.start; i < edges.size(); ++i) {
      (*weight)[edges[i].src] += edges[i].weight;
      (*weight)[edges[i].dst] += edges[i].weight;
    }
    cursor->consumed[b] = bucket.start + edges.size();
  }
  return rebuilt;
}

std::size_t BoundaryEdgeIndex::EvictOlderThan(
    Timestamp horizon, const Cursor& fold_cursor,
    std::unordered_map<VertexId, double>* weight) {
  std::size_t evicted = 0;
  const bool cursor_sized = fold_cursor.epoch.size() == buckets_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    std::size_t k = 0;
    while (k < bucket.edges.size() && bucket.edges[k].ts < horizon) ++k;
    if (k == 0) continue;
    // Subtract only contributions the fold cursor has actually consumed
    // (logical position < consumed); an epoch mismatch means the aggregate
    // is about to be rebuilt from scratch anyway, so nothing to subtract.
    if (weight != nullptr && cursor_sized &&
        fold_cursor.epoch[b] == bucket.epoch) {
      for (std::size_t i = 0; i < k; ++i) {
        if (bucket.start + i >= fold_cursor.consumed[b]) break;
        (*weight)[bucket.edges[i].src] -= bucket.edges[i].weight;
        (*weight)[bucket.edges[i].dst] -= bucket.edges[i].weight;
      }
    }
    bucket.edges.erase(bucket.edges.begin(),
                       bucket.edges.begin() + static_cast<std::ptrdiff_t>(k));
    bucket.start += k;
    evicted += k;
  }
  if (evicted > 0) {
    total_.fetch_sub(evicted, std::memory_order_relaxed);
    if (weight != nullptr) {
      // Prune near-zero residue so the aggregate's footprint follows the
      // window too (subtraction leaves float dust, never exact zeros).
      for (auto it = weight->begin(); it != weight->end();) {
        if (std::abs(it->second) < 1e-9) {
          it = weight->erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return evicted;
}

std::vector<Edge> BoundaryEdgeIndex::SnapshotEdges() const {
  std::vector<Edge> out;
  out.reserve(TotalEdges());
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    out.insert(out.end(), bucket.edges.begin(), bucket.edges.end());
  }
  return out;
}

void BoundaryEdgeIndex::Clear(Cursor* sync) {
  if (sync != nullptr && sync->epoch.size() != buckets_.size()) {
    sync->epoch.assign(buckets_.size(), 0);
    sync->consumed.assign(buckets_.size(), 0);
  }
  std::uint64_t dropped = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    dropped += bucket.edges.size();
    bucket.edges.clear();
    bucket.start = 0;
    ++bucket.epoch;
    if (sync != nullptr) {
      sync->epoch[b] = bucket.epoch;
      sync->consumed[b] = 0;
    }
  }
  total_.fetch_sub(dropped, std::memory_order_relaxed);
}

Status BoundaryEdgeIndex::Save(const std::string& path, Cursor* sync) const {
  storage::ChecksummedFileWriter writer(path);
  writer.Write(kBoundaryMagic);
  writer.Write(kBoundaryVersion);
  writer.Write(static_cast<std::uint64_t>(num_shards_));
  // The cursor positions are staged and committed only after Finish()
  // publishes the file: a cursor advanced past a write that never hit
  // disk would silently drop those edges from every future tail.
  std::vector<std::uint64_t> staged_epoch(buckets_.size(), 0);
  std::vector<std::size_t> staged_consumed(buckets_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    writer.Write(static_cast<std::uint64_t>(bucket.edges.size()));
    for (const Edge& e : bucket.edges) WriteEdge(&writer, e);
    // Captured under the same lock as the write — the durable prefix is
    // exactly what the file holds; an edge recorded after this point
    // lands in the next tail, never in limbo. Logical position: a base
    // file holds only the resident (un-evicted) edges, and the cursor
    // anchors past everything ever appended before it.
    staged_epoch[b] = bucket.epoch;
    staged_consumed[b] = bucket.start + bucket.edges.size();
  }
  SPADE_RETURN_NOT_OK(writer.Finish());
  if (sync != nullptr) {
    sync->epoch = std::move(staged_epoch);
    sync->consumed = std::move(staged_consumed);
  }
  return Status::OK();
}

Status BoundaryEdgeIndex::SaveTail(const std::string& path,
                                   std::uint64_t checkpoint_epoch,
                                   Cursor* cursor,
                                   std::uint64_t* bytes_written) const {
  SPADE_CHECK(cursor != nullptr);
  if (cursor->epoch.size() != buckets_.size()) {
    return Status::FailedPrecondition(
        "boundary tail cursor was never anchored by a full Save");
  }
  // An epoch bump (Clear/Load) since the cursor's anchor means the prefix
  // the cursor describes no longer exists; only a full Save is sound.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    if (cursor->epoch[b] != buckets_[b].epoch) {
      return Status::FailedPrecondition(
          "boundary index epoch changed under the persist cursor");
    }
  }
  storage::ChecksummedFileWriter writer(path);
  writer.Write(kTailMagic);
  writer.Write(kTailVersion);
  writer.Write(static_cast<std::uint64_t>(num_shards_));
  writer.Write(checkpoint_epoch);
  // Staged like Save(): the cursor only advances once the file is
  // durable, so a failed Finish() (disk full, rename error) leaves the
  // unsaved edges claimable by a retry instead of silently dropping them
  // from every future tail.
  std::vector<std::size_t> staged_consumed(buckets_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    // Re-check under the lock (a concurrent Clear between the validation
    // pass and here would silently rewind the bucket).
    if (cursor->epoch[b] != bucket.epoch) {
      return Status::FailedPrecondition(
          "boundary index epoch changed under the persist cursor");
    }
    // Logical -> physical: an evicted-but-never-persisted prefix
    // (consumed < start) is skipped on purpose — those edges expired
    // before any checkpoint needed them, and a restore must not resurrect
    // an edge the live index no longer holds.
    const std::size_t from_logical =
        std::max(cursor->consumed[b], bucket.start);
    const std::size_t from = from_logical - bucket.start;
    const std::size_t to = bucket.edges.size();
    writer.Write(static_cast<std::uint64_t>(to - from));
    for (std::size_t i = from; i < to; ++i) WriteEdge(&writer, bucket.edges[i]);
    staged_consumed[b] = bucket.start + to;
  }
  const std::uint64_t payload = writer.bytes_written();
  SPADE_RETURN_NOT_OK(writer.Finish());
  cursor->consumed = std::move(staged_consumed);
  if (bytes_written != nullptr) {
    *bytes_written = payload + sizeof(std::uint64_t);
  }
  return Status::OK();
}

Status BoundaryEdgeIndex::ReadFile(const std::string& path,
                                   std::size_t expected_shards,
                                   FileData* out) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::NotFound("no boundary index at " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t shards = 0;
  if (!reader.Read(&magic) || magic != kBoundaryMagic) {
    return Status::IOError("bad boundary index magic in " + path);
  }
  if (!reader.Read(&version) || version != kBoundaryVersion) {
    return Status::IOError("unsupported boundary index version in " + path);
  }
  if (!reader.Read(&shards) || shards != expected_shards) {
    return Status::FailedPrecondition(
        "boundary index in " + path + " has " + std::to_string(shards) +
        " shards but the service has " + std::to_string(expected_shards));
  }
  FileData parsed;
  SPADE_RETURN_NOT_OK(
      ReadBuckets(&reader, expected_shards * expected_shards, &parsed.buckets));
  *out = std::move(parsed);
  return Status::OK();
}

Status BoundaryEdgeIndex::ReadTailFile(const std::string& path,
                                       std::size_t expected_shards,
                                       std::uint64_t expected_epoch,
                                       FileData* out) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::NotFound("no boundary tail at " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t shards = 0;
  FileData parsed;
  if (!reader.Read(&magic) || magic != kTailMagic) {
    return Status::IOError("bad boundary tail magic in " + path);
  }
  if (!reader.Read(&version) || version != kTailVersion) {
    return Status::IOError("unsupported boundary tail version in " + path);
  }
  if (!reader.Read(&shards) || shards != expected_shards) {
    return Status::FailedPrecondition(
        "boundary tail in " + path + " has " + std::to_string(shards) +
        " shards but the service has " + std::to_string(expected_shards));
  }
  if (!reader.Read(&parsed.epoch) || parsed.epoch != expected_epoch) {
    return Status::IOError("boundary tail epoch mismatch in " + path);
  }
  SPADE_RETURN_NOT_OK(
      ReadBuckets(&reader, expected_shards * expected_shards, &parsed.buckets));
  *out = std::move(parsed);
  return Status::OK();
}

void BoundaryEdgeIndex::AdoptBuckets(FileData&& data, Cursor* sync) {
  SPADE_CHECK(data.buckets.size() == buckets_.size());
  if (sync != nullptr && sync->epoch.size() != buckets_.size()) {
    sync->epoch.assign(buckets_.size(), 0);
    sync->consumed.assign(buckets_.size(), 0);
  }
  std::uint64_t loaded_total = 0;
  std::uint64_t previous = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    previous += buckets_[b].edges.size();
    loaded_total += data.buckets[b].size();
    buckets_[b].edges = std::move(data.buckets[b]);
    buckets_[b].start = 0;
    ++buckets_[b].epoch;
    if (sync != nullptr) {
      sync->epoch[b] = buckets_[b].epoch;
      sync->consumed[b] = buckets_[b].edges.size();
    }
  }
  total_.fetch_add(loaded_total - previous, std::memory_order_relaxed);
}

void BoundaryEdgeIndex::AppendBuckets(const FileData& data, Cursor* sync) {
  SPADE_CHECK(data.buckets.size() == buckets_.size());
  std::uint64_t appended = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    buckets_[b].edges.insert(buckets_[b].edges.end(), data.buckets[b].begin(),
                             data.buckets[b].end());
    appended += data.buckets[b].size();
    if (sync != nullptr && b < sync->consumed.size()) {
      sync->consumed[b] += data.buckets[b].size();
    }
  }
  total_.fetch_add(appended, std::memory_order_relaxed);
}

Status BoundaryEdgeIndex::Load(const std::string& path, Cursor* sync) {
  FileData data;
  SPADE_RETURN_NOT_OK(ReadFile(path, num_shards_, &data));
  AdoptBuckets(std::move(data), sync);
  return Status::OK();
}

}  // namespace spade
