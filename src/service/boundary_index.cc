#include "service/boundary_index.h"

#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "storage/snapshot.h"

namespace spade {

namespace {

constexpr std::uint64_t kBoundaryMagic = 0x53504144455F4249ULL;  // "SPADE_BI"
constexpr std::uint32_t kBoundaryVersion = 1;

}  // namespace

BoundaryEdgeIndex::BoundaryEdgeIndex(std::size_t num_shards)
    : num_shards_(num_shards), buckets_(num_shards * num_shards) {
  SPADE_CHECK(num_shards > 0);
}

void BoundaryEdgeIndex::Record(std::size_t src_home, std::size_t dst_home,
                               const Edge& edge) {
  SPADE_DCHECK(src_home < num_shards_ && dst_home < num_shards_);
  Bucket& bucket = buckets_[BucketOf(src_home, dst_home)];
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    bucket.edges.push_back(edge);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

bool BoundaryEdgeIndex::FoldNewEdges(
    Cursor* cursor, std::unordered_map<VertexId, double>* weight) const {
  if (cursor->epoch.size() != buckets_.size()) {
    cursor->epoch.assign(buckets_.size(), 0);
    cursor->consumed.assign(buckets_.size(), 0);
  }
  // Pass 1: a bumped epoch anywhere (Clear/Load) invalidates the whole
  // aggregate — per-bucket contributions are not tracked separately, so the
  // only sound recovery is a full rebuild.
  bool rebuilt = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    if (cursor->epoch[b] != buckets_[b].epoch) {
      rebuilt = true;
      break;
    }
  }
  if (rebuilt) {
    weight->clear();
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::lock_guard<std::mutex> lock(buckets_[b].mutex);
      cursor->epoch[b] = buckets_[b].epoch;
      cursor->consumed[b] = 0;
    }
  }
  // Pass 2: fold only the suffix appended since the cursor's last visit.
  // Edges recorded between the passes are picked up here or next time;
  // either way exactly once, because buckets are append-only within an
  // epoch.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    const std::vector<Edge>& edges = buckets_[b].edges;
    for (std::size_t i = cursor->consumed[b]; i < edges.size(); ++i) {
      (*weight)[edges[i].src] += edges[i].weight;
      (*weight)[edges[i].dst] += edges[i].weight;
    }
    cursor->consumed[b] = edges.size();
  }
  return rebuilt;
}

std::vector<Edge> BoundaryEdgeIndex::SnapshotEdges() const {
  std::vector<Edge> out;
  out.reserve(TotalEdges());
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    out.insert(out.end(), bucket.edges.begin(), bucket.edges.end());
  }
  return out;
}

void BoundaryEdgeIndex::Clear() {
  std::uint64_t dropped = 0;
  for (Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    dropped += bucket.edges.size();
    bucket.edges.clear();
    ++bucket.epoch;
  }
  total_.fetch_sub(dropped, std::memory_order_relaxed);
}

Status BoundaryEdgeIndex::Save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + tmp);

  std::uint64_t crc = 0;
  auto write = [&](const void* data, std::size_t size) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    crc = Crc64(data, size, crc);
  };
  auto write_u64 = [&](std::uint64_t v) { write(&v, sizeof(v)); };

  write_u64(kBoundaryMagic);
  const std::uint32_t version = kBoundaryVersion;
  write(&version, sizeof(version));
  write_u64(num_shards_);
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    write_u64(bucket.edges.size());
    for (const Edge& e : bucket.edges) {
      write(&e.src, sizeof(e.src));
      write(&e.dst, sizeof(e.dst));
      write(&e.weight, sizeof(e.weight));
      write(&e.ts, sizeof(e.ts));
    }
  }
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.flush();
  if (!out) return Status::IOError("write failed: " + tmp);
  out.close();

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp + ": " + ec.message());
  }
  return Status::OK();
}

Status BoundaryEdgeIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no boundary index at " + path);

  std::uint64_t crc = 0;
  auto read = [&](void* data, std::size_t size) -> bool {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in) return false;
    crc = Crc64(data, size, crc);
    return true;
  };

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t shards = 0;
  if (!read(&magic, sizeof(magic)) || magic != kBoundaryMagic) {
    return Status::IOError("bad boundary index magic in " + path);
  }
  if (!read(&version, sizeof(version)) || version != kBoundaryVersion) {
    return Status::IOError("unsupported boundary index version in " + path);
  }
  if (!read(&shards, sizeof(shards)) || shards != num_shards_) {
    return Status::FailedPrecondition(
        "boundary index in " + path + " has " + std::to_string(shards) +
        " shards but the service has " + std::to_string(num_shards_));
  }
  std::vector<std::vector<Edge>> loaded(buckets_.size());
  std::uint64_t loaded_total = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::uint64_t count = 0;
    if (!read(&count, sizeof(count))) {
      return Status::IOError("truncated boundary index: " + path);
    }
    loaded[b].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Edge& e = loaded[b][i];
      if (!read(&e.src, sizeof(e.src)) || !read(&e.dst, sizeof(e.dst)) ||
          !read(&e.weight, sizeof(e.weight)) || !read(&e.ts, sizeof(e.ts))) {
        return Status::IOError("truncated boundary index: " + path);
      }
    }
    loaded_total += count;
  }
  const std::uint64_t computed = crc;
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != computed) {
    return Status::IOError("boundary index CRC mismatch: " + path);
  }

  std::uint64_t previous = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    previous += buckets_[b].edges.size();
    buckets_[b].edges = std::move(loaded[b]);
    ++buckets_[b].epoch;
  }
  total_.fetch_add(loaded_total - previous, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace spade
