#include "service/boundary_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/checked_io.h"

namespace spade {

namespace {

constexpr std::uint64_t kBoundaryMagic = 0x53504144455F4249ULL;  // "SPADE_BI"
constexpr std::uint32_t kBoundaryVersion = 1;
// v2 adds a per-bucket compacted-block section ahead of the raw edges; a
// file with no blocks anywhere is written as v1, byte-identical to the
// pre-compaction format.
constexpr std::uint32_t kBoundaryVersionCompacted = 2;
constexpr std::uint64_t kTailMagic = 0x53504144455F4254ULL;  // "SPADE_BT"
constexpr std::uint32_t kTailVersion = 1;

// Beyond this many blocks per bucket, the two oldest merge — bounds the
// per-bucket block walk while keeping eviction granularity useful.
constexpr std::size_t kMaxBlocksPerBucket = 16;

void WriteEdge(storage::ChecksummedFileWriter* writer, const Edge& e) {
  writer->Write(e.src);
  writer->Write(e.dst);
  writer->Write(e.weight);
  writer->Write(e.ts);
}

bool ReadEdge(storage::ChecksummedFileReader* reader, Edge* e) {
  return reader->Read(&e->src) && reader->Read(&e->dst) &&
         reader->Read(&e->weight) && reader->Read(&e->ts);
}

/// Shared payload reader for v1 base and tail files (they differ only in
/// the header): per-bucket counts + edges for `num_buckets` buckets.
Status ReadBuckets(storage::ChecksummedFileReader* reader,
                   std::size_t num_buckets,
                   std::vector<std::vector<Edge>>* buckets) {
  buckets->assign(num_buckets, {});
  for (std::size_t b = 0; b < num_buckets; ++b) {
    std::uint64_t count = 0;
    if (!reader->Read(&count)) {
      return Status::IOError("truncated boundary file: " + reader->path());
    }
    // Pre-allocation plausibility gate (see checked_io.h): 24 payload
    // bytes per edge record.
    if (reader->CountExceedsFile(count, 24)) {
      return Status::IOError("boundary bucket count exceeds the file size: " +
                             reader->path());
    }
    (*buckets)[b].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!ReadEdge(reader, &(*buckets)[b][i])) {
        return Status::IOError("truncated boundary file: " + reader->path());
      }
    }
  }
  return reader->VerifyTrailer();
}

/// v2 payload: per bucket, a block section (count; per block max_ts,
/// edge_count, entry count, sorted (vertex, weight) entries) then the raw
/// edges, same record shape as v1.
Status ReadBucketsCompacted(
    storage::ChecksummedFileReader* reader, std::size_t num_buckets,
    std::vector<std::vector<Edge>>* buckets,
    std::vector<std::vector<BoundaryEdgeIndex::CompactedBlock>>* blocks) {
  buckets->assign(num_buckets, {});
  blocks->assign(num_buckets, {});
  for (std::size_t b = 0; b < num_buckets; ++b) {
    std::uint64_t block_count = 0;
    if (!reader->Read(&block_count)) {
      return Status::IOError("truncated boundary file: " + reader->path());
    }
    // A block is at least 24 header bytes on disk.
    if (reader->CountExceedsFile(block_count, 24)) {
      return Status::IOError("boundary block count exceeds the file size: " +
                             reader->path());
    }
    (*blocks)[b].resize(block_count);
    for (std::uint64_t i = 0; i < block_count; ++i) {
      auto& block = (*blocks)[b][i];
      std::uint64_t entries = 0;
      if (!reader->Read(&block.max_ts) || !reader->Read(&block.edge_count) ||
          !reader->Read(&entries)) {
        return Status::IOError("truncated boundary file: " + reader->path());
      }
      // 12 payload bytes per (vertex u32, weight f64) entry.
      if (reader->CountExceedsFile(entries, 12)) {
        return Status::IOError(
            "boundary block entry count exceeds the file size: " +
            reader->path());
      }
      block.weight.resize(entries);
      for (std::uint64_t k = 0; k < entries; ++k) {
        if (!reader->Read(&block.weight[k].first) ||
            !reader->Read(&block.weight[k].second)) {
          return Status::IOError("truncated boundary file: " + reader->path());
        }
      }
    }
    std::uint64_t count = 0;
    if (!reader->Read(&count)) {
      return Status::IOError("truncated boundary file: " + reader->path());
    }
    if (reader->CountExceedsFile(count, 24)) {
      return Status::IOError("boundary bucket count exceeds the file size: " +
                             reader->path());
    }
    (*buckets)[b].resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!ReadEdge(reader, &(*buckets)[b][i])) {
        return Status::IOError("truncated boundary file: " + reader->path());
      }
    }
  }
  return reader->VerifyTrailer();
}

std::size_t BlockEdgeTotal(
    const std::vector<BoundaryEdgeIndex::CompactedBlock>& blocks) {
  std::size_t n = 0;
  for (const auto& block : blocks) n += block.edge_count;
  return n;
}

std::size_t BlockEntryTotal(
    const std::vector<BoundaryEdgeIndex::CompactedBlock>& blocks) {
  std::size_t n = 0;
  for (const auto& block : blocks) n += block.weight.size();
  return n;
}

/// Merges two sorted per-vertex sum lists (block coalescing).
std::vector<std::pair<VertexId, double>> MergeWeights(
    const std::vector<std::pair<VertexId, double>>& a,
    const std::vector<std::pair<VertexId, double>>& b) {
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out.push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
  return out;
}

}  // namespace

BoundaryEdgeIndex::BoundaryEdgeIndex(std::size_t num_shards)
    : num_shards_(num_shards), buckets_(num_shards * num_shards) {
  SPADE_CHECK(num_shards > 0);
}

std::size_t BoundaryEdgeIndex::CompactedBase(const Bucket& bucket) {
  return bucket.start - BlockEdgeTotal(bucket.blocks);
}

void BoundaryEdgeIndex::Record(std::size_t src_home, std::size_t dst_home,
                               const Edge& edge) {
  SPADE_DCHECK(src_home < num_shards_ && dst_home < num_shards_);
  Bucket& bucket = buckets_[BucketOf(src_home, dst_home)];
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    bucket.edges.push_back(edge);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void BoundaryEdgeIndex::RecordBatch(std::span<const PairGroup> groups) {
  std::uint64_t appended = 0;
  for (const PairGroup& group : groups) {
    if (group.edges.empty()) continue;
    SPADE_DCHECK(group.src_home < num_shards_ &&
                 group.dst_home < num_shards_);
    Bucket& bucket = buckets_[BucketOf(group.src_home, group.dst_home)];
    {
      std::lock_guard<std::mutex> lock(bucket.mutex);
      bucket.edges.insert(bucket.edges.end(), group.edges.begin(),
                          group.edges.end());
    }
    appended += group.edges.size();
  }
  if (appended > 0) {
    total_.fetch_add(appended, std::memory_order_relaxed);
    recorded_.fetch_add(appended, std::memory_order_relaxed);
  }
}

bool BoundaryEdgeIndex::FoldNewEdges(
    Cursor* cursor, std::unordered_map<VertexId, double>* weight) const {
  if (cursor->epoch.size() != buckets_.size()) {
    cursor->epoch.assign(buckets_.size(), 0);
    cursor->consumed.assign(buckets_.size(), 0);
  }
  // Pass 1: a bumped epoch anywhere (Clear/Load) invalidates the whole
  // aggregate — per-bucket contributions are not tracked separately, so the
  // only sound recovery is a full rebuild.
  bool rebuilt = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    if (cursor->epoch[b] != buckets_[b].epoch) {
      rebuilt = true;
      break;
    }
  }
  if (rebuilt) {
    weight->clear();
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::lock_guard<std::mutex> lock(buckets_[b].mutex);
      cursor->epoch[b] = buckets_[b].epoch;
      cursor->consumed[b] = 0;
    }
  }
  // Pass 2: fold only the suffix appended since the cursor's last visit.
  // Edges recorded between the passes are picked up here or next time;
  // either way exactly once, because buckets are append-only within an
  // epoch. Positions are logical (append-history) indices: an evicted-
  // before-fold prefix was never folded and never will be — it expired
  // unseen, which is exactly the eviction contract. A cursor behind the
  // bucket's raw start first folds any compacted block past its position
  // whole (blocks hold exactly the sums a fold would have produced;
  // compaction is driven by this cursor, so a block never straddles it).
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    const Bucket& bucket = buckets_[b];
    const std::vector<Edge>& edges = bucket.edges;
    if (cursor->consumed[b] < bucket.start) {
      std::size_t base = CompactedBase(bucket);
      for (const CompactedBlock& block : bucket.blocks) {
        const std::size_t end = base + block.edge_count;
        if (end > cursor->consumed[b]) {
          for (const auto& [v, w] : block.weight) (*weight)[v] += w;
        }
        base = end;
      }
    }
    const std::size_t from_logical =
        std::max(cursor->consumed[b], bucket.start);
    for (std::size_t i = from_logical - bucket.start; i < edges.size(); ++i) {
      (*weight)[edges[i].src] += edges[i].weight;
      (*weight)[edges[i].dst] += edges[i].weight;
    }
    cursor->consumed[b] = bucket.start + edges.size();
  }
  return rebuilt;
}

std::size_t BoundaryEdgeIndex::CompactConsumed(const Cursor& fold_cursor,
                                               std::size_t min_batch) {
  if (fold_cursor.epoch.size() != buckets_.size()) return 0;
  std::size_t compacted = 0;
  std::uint64_t new_entries = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    if (fold_cursor.epoch[b] != bucket.epoch) continue;
    // Only the prefix the fold already consumed AND the checkpoint chain
    // (if anchored) already persisted may leave raw form.
    const std::size_t limit =
        std::min(fold_cursor.consumed[b], bucket.persist_floor);
    if (limit <= bucket.start) continue;
    const std::size_t n =
        std::min(limit, bucket.start + bucket.edges.size()) - bucket.start;
    if (n < min_batch) continue;

    CompactedBlock block;
    block.edge_count = n;
    std::unordered_map<VertexId, double> sums;
    for (std::size_t i = 0; i < n; ++i) {
      const Edge& e = bucket.edges[i];
      sums[e.src] += e.weight;
      sums[e.dst] += e.weight;
      block.max_ts = std::max(block.max_ts, e.ts);
    }
    block.weight.assign(sums.begin(), sums.end());
    std::sort(block.weight.begin(), block.weight.end());
    bucket.edges.erase(bucket.edges.begin(),
                       bucket.edges.begin() + static_cast<std::ptrdiff_t>(n));
    bucket.start += n;
    new_entries += block.weight.size();
    bucket.blocks.push_back(std::move(block));
    while (bucket.blocks.size() > kMaxBlocksPerBucket) {
      CompactedBlock merged;
      merged.max_ts =
          std::max(bucket.blocks[0].max_ts, bucket.blocks[1].max_ts);
      merged.edge_count =
          bucket.blocks[0].edge_count + bucket.blocks[1].edge_count;
      const std::size_t before =
          bucket.blocks[0].weight.size() + bucket.blocks[1].weight.size();
      merged.weight =
          MergeWeights(bucket.blocks[0].weight, bucket.blocks[1].weight);
      new_entries -= before - merged.weight.size();
      bucket.blocks.erase(bucket.blocks.begin());
      bucket.blocks[0] = std::move(merged);
    }
    compacted += n;
  }
  if (compacted > 0) {
    compacted_edges_.fetch_add(compacted, std::memory_order_relaxed);
    block_entries_.fetch_add(new_entries, std::memory_order_relaxed);
  }
  return compacted;
}

std::size_t BoundaryEdgeIndex::EvictOlderThan(
    Timestamp horizon, const Cursor& fold_cursor,
    std::unordered_map<VertexId, double>* weight) {
  std::size_t evicted = 0;
  std::uint64_t evicted_compacted = 0;
  std::uint64_t evicted_entries = 0;
  const bool cursor_sized = fold_cursor.epoch.size() == buckets_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    const bool cursor_live =
        cursor_sized && fold_cursor.epoch[b] == bucket.epoch;
    // Compacted blocks sit in front of the raw edges; drop whole expired
    // ones. Every compacted edge was fold-consumed by construction, so the
    // block's stored sums are exactly its aggregate contribution. A live
    // block shields everything behind it, raw suffix included.
    while (!bucket.blocks.empty() && bucket.blocks.front().max_ts < horizon) {
      const CompactedBlock& block = bucket.blocks.front();
      if (weight != nullptr && cursor_live) {
        for (const auto& [v, w] : block.weight) (*weight)[v] -= w;
      }
      evicted += block.edge_count;
      evicted_compacted += block.edge_count;
      evicted_entries += block.weight.size();
      bucket.blocks.erase(bucket.blocks.begin());
    }
    if (!bucket.blocks.empty()) continue;
    std::size_t k = 0;
    while (k < bucket.edges.size() && bucket.edges[k].ts < horizon) ++k;
    if (k == 0) continue;
    // Subtract only contributions the fold cursor has actually consumed
    // (logical position < consumed); an epoch mismatch means the aggregate
    // is about to be rebuilt from scratch anyway, so nothing to subtract.
    if (weight != nullptr && cursor_live) {
      for (std::size_t i = 0; i < k; ++i) {
        if (bucket.start + i >= fold_cursor.consumed[b]) break;
        (*weight)[bucket.edges[i].src] -= bucket.edges[i].weight;
        (*weight)[bucket.edges[i].dst] -= bucket.edges[i].weight;
      }
    }
    bucket.edges.erase(bucket.edges.begin(),
                       bucket.edges.begin() + static_cast<std::ptrdiff_t>(k));
    bucket.start += k;
    evicted += k;
  }
  if (evicted > 0) {
    total_.fetch_sub(evicted, std::memory_order_relaxed);
    if (evicted_compacted > 0) {
      compacted_edges_.fetch_sub(evicted_compacted, std::memory_order_relaxed);
      block_entries_.fetch_sub(evicted_entries, std::memory_order_relaxed);
    }
    if (weight != nullptr) {
      // Prune near-zero residue so the aggregate's footprint follows the
      // window too (subtraction leaves float dust, never exact zeros).
      for (auto it = weight->begin(); it != weight->end();) {
        if (std::abs(it->second) < 1e-9) {
          it = weight->erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return evicted;
}

std::vector<Edge> BoundaryEdgeIndex::SnapshotEdges() const {
  std::vector<Edge> out;
  out.reserve(TotalEdges());
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    out.insert(out.end(), bucket.edges.begin(), bucket.edges.end());
  }
  return out;
}

void BoundaryEdgeIndex::Clear(Cursor* sync) {
  if (sync != nullptr && sync->epoch.size() != buckets_.size()) {
    sync->epoch.assign(buckets_.size(), 0);
    sync->consumed.assign(buckets_.size(), 0);
  }
  std::uint64_t dropped = 0;
  std::uint64_t dropped_compacted = 0;
  std::uint64_t dropped_entries = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    dropped += bucket.edges.size() + BlockEdgeTotal(bucket.blocks);
    dropped_compacted += BlockEdgeTotal(bucket.blocks);
    dropped_entries += BlockEntryTotal(bucket.blocks);
    bucket.edges.clear();
    bucket.blocks.clear();
    bucket.start = 0;
    ++bucket.epoch;
    // A synced clear keeps the chain anchored at the empty bucket (floor
    // 0: nothing recorded after it is persisted yet); an unsynced one
    // leaves no chain, so compaction is unrestricted again.
    bucket.persist_floor =
        sync != nullptr ? 0 : std::numeric_limits<std::size_t>::max();
    if (sync != nullptr) {
      sync->epoch[b] = bucket.epoch;
      sync->consumed[b] = 0;
    }
  }
  total_.fetch_sub(dropped, std::memory_order_relaxed);
  compacted_edges_.fetch_sub(dropped_compacted, std::memory_order_relaxed);
  block_entries_.fetch_sub(dropped_entries, std::memory_order_relaxed);
}

Status BoundaryEdgeIndex::Save(const std::string& path, Cursor* sync,
                               std::uint32_t* format) const {
  // Capture every bucket under its lock first: the file-level version
  // decision (v1 iff no blocks anywhere) must see one consistent cut, and
  // a concurrent CompactConsumed (stitch lock, not the save lock) may
  // create a bucket's first block mid-save otherwise.
  struct Captured {
    std::vector<Edge> edges;
    std::vector<CompactedBlock> blocks;
    std::uint64_t epoch = 0;
    std::size_t end = 0;  // logical end = the staged cursor position
  };
  std::vector<Captured> captured(buckets_.size());
  bool any_blocks = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    captured[b].edges = bucket.edges;
    captured[b].blocks = bucket.blocks;
    captured[b].epoch = bucket.epoch;
    // The durable prefix is exactly what the capture holds; an edge
    // recorded after this point lands in the next tail, never in limbo.
    // Logical position: the capture holds only resident edges, and the
    // cursor anchors past everything ever appended before it.
    captured[b].end = bucket.start + bucket.edges.size();
    any_blocks = any_blocks || !bucket.blocks.empty();
  }

  storage::ChecksummedFileWriter writer(path);
  writer.Write(kBoundaryMagic);
  writer.Write(any_blocks ? kBoundaryVersionCompacted : kBoundaryVersion);
  writer.Write(static_cast<std::uint64_t>(num_shards_));
  for (const Captured& cap : captured) {
    if (any_blocks) {
      writer.Write(static_cast<std::uint64_t>(cap.blocks.size()));
      for (const CompactedBlock& block : cap.blocks) {
        writer.Write(block.max_ts);
        writer.Write(block.edge_count);
        writer.Write(static_cast<std::uint64_t>(block.weight.size()));
        for (const auto& [v, w] : block.weight) {
          writer.Write(v);
          writer.Write(w);
        }
      }
    }
    writer.Write(static_cast<std::uint64_t>(cap.edges.size()));
    for (const Edge& e : cap.edges) WriteEdge(&writer, e);
  }
  SPADE_RETURN_NOT_OK(writer.Finish());
  // Cursor + persist floor commit only after Finish() publishes the file:
  // a floor advanced past a write that never hit disk would let compaction
  // eat edges every future tail still owes the chain.
  if (sync != nullptr) {
    sync->epoch.resize(buckets_.size());
    sync->consumed.resize(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const Bucket& bucket = buckets_[b];
      std::lock_guard<std::mutex> lock(bucket.mutex);
      sync->epoch[b] = captured[b].epoch;
      sync->consumed[b] = captured[b].end;
      if (bucket.epoch == captured[b].epoch) {
        bucket.persist_floor = captured[b].end;
      }
    }
  }
  if (format != nullptr) {
    *format = any_blocks ? kBoundaryVersionCompacted : kBoundaryVersion;
  }
  return Status::OK();
}

Status BoundaryEdgeIndex::SaveTail(const std::string& path,
                                   std::uint64_t checkpoint_epoch,
                                   Cursor* cursor,
                                   std::uint64_t* bytes_written) const {
  SPADE_CHECK(cursor != nullptr);
  if (cursor->epoch.size() != buckets_.size()) {
    return Status::FailedPrecondition(
        "boundary tail cursor was never anchored by a full Save");
  }
  // An epoch bump (Clear/Load) since the cursor's anchor means the prefix
  // the cursor describes no longer exists; only a full Save is sound.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    if (cursor->epoch[b] != buckets_[b].epoch) {
      return Status::FailedPrecondition(
          "boundary index epoch changed under the persist cursor");
    }
  }
  storage::ChecksummedFileWriter writer(path);
  writer.Write(kTailMagic);
  writer.Write(kTailVersion);
  writer.Write(static_cast<std::uint64_t>(num_shards_));
  writer.Write(checkpoint_epoch);
  // Staged like Save(): the cursor only advances once the file is
  // durable, so a failed Finish() (disk full, rename error) leaves the
  // unsaved edges claimable by a retry instead of silently dropping them
  // from every future tail.
  std::vector<std::size_t> staged_consumed(buckets_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    // Re-check under the lock (a concurrent Clear between the validation
    // pass and here would silently rewind the bucket).
    if (cursor->epoch[b] != bucket.epoch) {
      return Status::FailedPrecondition(
          "boundary index epoch changed under the persist cursor");
    }
    // Logical -> physical: an evicted-but-never-persisted prefix
    // (consumed below the compacted base) is skipped on purpose — those
    // edges expired before any checkpoint needed them, and a restore must
    // not resurrect an edge the live index no longer holds. A cursor
    // pointing INTO the compacted range, though, means the raw suffix it
    // owes the chain no longer exists verbatim — the persist floor forbids
    // that through the service flow, so treat it as a precondition failure
    // and let the caller fall back to a full save.
    if (cursor->consumed[b] < bucket.start &&
        cursor->consumed[b] > CompactedBase(bucket)) {
      return Status::FailedPrecondition(
          "boundary persist cursor points into a compacted range");
    }
    const std::size_t from_logical =
        std::max(cursor->consumed[b], bucket.start);
    const std::size_t from = from_logical - bucket.start;
    const std::size_t to = bucket.edges.size();
    writer.Write(static_cast<std::uint64_t>(to - from));
    for (std::size_t i = from; i < to; ++i) WriteEdge(&writer, bucket.edges[i]);
    staged_consumed[b] = bucket.start + to;
  }
  const std::uint64_t payload = writer.bytes_written();
  SPADE_RETURN_NOT_OK(writer.Finish());
  cursor->consumed = std::move(staged_consumed);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    std::lock_guard<std::mutex> lock(bucket.mutex);
    if (bucket.epoch == cursor->epoch[b]) {
      bucket.persist_floor = cursor->consumed[b];
    }
  }
  if (bytes_written != nullptr) {
    *bytes_written = payload + sizeof(std::uint64_t);
  }
  return Status::OK();
}

Status BoundaryEdgeIndex::ReadFile(const std::string& path,
                                   std::size_t expected_shards,
                                   FileData* out) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::NotFound("no boundary index at " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t shards = 0;
  if (!reader.Read(&magic) || magic != kBoundaryMagic) {
    return Status::IOError("bad boundary index magic in " + path);
  }
  if (!reader.Read(&version) ||
      (version != kBoundaryVersion && version != kBoundaryVersionCompacted)) {
    return Status::IOError("unsupported boundary index version in " + path);
  }
  if (!reader.Read(&shards) || shards != expected_shards) {
    return Status::FailedPrecondition(
        "boundary index in " + path + " has " + std::to_string(shards) +
        " shards but the service has " + std::to_string(expected_shards));
  }
  FileData parsed;
  if (version == kBoundaryVersionCompacted) {
    SPADE_RETURN_NOT_OK(ReadBucketsCompacted(&reader,
                                             expected_shards * expected_shards,
                                             &parsed.buckets, &parsed.blocks));
  } else {
    SPADE_RETURN_NOT_OK(ReadBuckets(
        &reader, expected_shards * expected_shards, &parsed.buckets));
  }
  *out = std::move(parsed);
  return Status::OK();
}

Status BoundaryEdgeIndex::ReadTailFile(const std::string& path,
                                       std::size_t expected_shards,
                                       std::uint64_t expected_epoch,
                                       FileData* out) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::NotFound("no boundary tail at " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t shards = 0;
  FileData parsed;
  if (!reader.Read(&magic) || magic != kTailMagic) {
    return Status::IOError("bad boundary tail magic in " + path);
  }
  if (!reader.Read(&version) || version != kTailVersion) {
    return Status::IOError("unsupported boundary tail version in " + path);
  }
  if (!reader.Read(&shards) || shards != expected_shards) {
    return Status::FailedPrecondition(
        "boundary tail in " + path + " has " + std::to_string(shards) +
        " shards but the service has " + std::to_string(expected_shards));
  }
  if (!reader.Read(&parsed.epoch) || parsed.epoch != expected_epoch) {
    return Status::IOError("boundary tail epoch mismatch in " + path);
  }
  SPADE_RETURN_NOT_OK(
      ReadBuckets(&reader, expected_shards * expected_shards, &parsed.buckets));
  *out = std::move(parsed);
  return Status::OK();
}

void BoundaryEdgeIndex::AdoptBuckets(FileData&& data, Cursor* sync) {
  SPADE_CHECK(data.buckets.size() == buckets_.size());
  SPADE_CHECK(data.blocks.empty() || data.blocks.size() == buckets_.size());
  if (sync != nullptr && sync->epoch.size() != buckets_.size()) {
    sync->epoch.assign(buckets_.size(), 0);
    sync->consumed.assign(buckets_.size(), 0);
  }
  std::uint64_t loaded_total = 0;
  std::uint64_t previous = 0;
  std::uint64_t loaded_compacted = 0;
  std::uint64_t previous_compacted = 0;
  std::uint64_t loaded_entries = 0;
  std::uint64_t previous_entries = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    Bucket& bucket = buckets_[b];
    previous += bucket.edges.size() + BlockEdgeTotal(bucket.blocks);
    previous_compacted += BlockEdgeTotal(bucket.blocks);
    previous_entries += BlockEntryTotal(bucket.blocks);
    bucket.edges = std::move(data.buckets[b]);
    bucket.blocks = data.blocks.empty() ? std::vector<CompactedBlock>{}
                                        : std::move(data.blocks[b]);
    // Restored blocks sit below the raw edges in logical order, exactly as
    // the save captured them.
    bucket.start = BlockEdgeTotal(bucket.blocks);
    loaded_total += bucket.edges.size() + bucket.start;
    loaded_compacted += bucket.start;
    loaded_entries += BlockEntryTotal(bucket.blocks);
    ++bucket.epoch;
    const std::size_t end = bucket.start + bucket.edges.size();
    // The adopted content is durable in the file the chain resumes from;
    // without a sync cursor there is no chain, so compaction is free.
    bucket.persist_floor =
        sync != nullptr ? end : std::numeric_limits<std::size_t>::max();
    if (sync != nullptr) {
      sync->epoch[b] = bucket.epoch;
      sync->consumed[b] = end;
    }
  }
  total_.fetch_add(loaded_total - previous, std::memory_order_relaxed);
  compacted_edges_.fetch_add(loaded_compacted - previous_compacted,
                             std::memory_order_relaxed);
  block_entries_.fetch_add(loaded_entries - previous_entries,
                           std::memory_order_relaxed);
}

void BoundaryEdgeIndex::AppendBuckets(const FileData& data, Cursor* sync) {
  SPADE_CHECK(data.buckets.size() == buckets_.size());
  std::uint64_t appended = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lock(buckets_[b].mutex);
    buckets_[b].edges.insert(buckets_[b].edges.end(), data.buckets[b].begin(),
                             data.buckets[b].end());
    appended += data.buckets[b].size();
    if (sync != nullptr && b < sync->consumed.size()) {
      sync->consumed[b] += data.buckets[b].size();
      // Tail contents are durable by definition.
      if (sync->epoch[b] == buckets_[b].epoch) {
        buckets_[b].persist_floor = sync->consumed[b];
      }
    }
  }
  total_.fetch_add(appended, std::memory_order_relaxed);
}

Status BoundaryEdgeIndex::Load(const std::string& path, Cursor* sync) {
  FileData data;
  SPADE_RETURN_NOT_OK(ReadFile(path, num_shards_, &data));
  AdoptBuckets(std::move(data), sync);
  return Status::OK();
}

}  // namespace spade
