// ShardWorker: one detector shard behind a lock-light chunk-handoff queue.
//
// The worker owns a Spade instance exclusively; no other thread ever calls
// into the detector while the worker runs. The three client-visible paths
// are decoupled so none of them serializes on an in-flight reorder:
//
//   * Submit / SubmitBatch: producers hand whole chunks of edges to the
//     worker through a bounded MPSC ring of edge slabs (Vyukov-style
//     sequence-stamped cells). The hot path is entirely lock-free: claim
//     queue budget with one CAS, claim a ring cell with one CAS, publish
//     the cell's sequence word. A mutex is touched only on the slow paths
//     (full queue in blocking mode, parking, Drain) — never per edge, and
//     never per chunk while the pipeline keeps up.
//   * CurrentCommunity / CurrentSnapshot: the worker publishes each
//     detected community as an atomically-swapped shared_ptr snapshot.
//     Readers load the pointer and never touch any mutex on the apply path.
//   * EdgesProcessed / AlertsDelivered / QueueDepth: relaxed atomics.
//
// Wakeup coalescing: producers notify the worker only when it is actually
// parked (`parked_` is set, seq_cst, before the worker re-checks the ring
// and waits; producers publish, then load `parked_` — the classic Dekker
// handshake, so either the worker sees the new slab or the producer sees
// the parked flag and wakes it). A producer feeding a busy worker performs
// zero syscalls and zero lock acquisitions per chunk.
//
// Alerts are delivered from the worker thread with no service lock held
// (the snapshot is taken first), so a slow moderator callback can delay the
// next detection but never blocks producers or readers.
//
// Snapshot-publication protocol (DESIGN.md §4.2): the worker republishes on
// every detection (urgent flush or detect_every cadence). Exactness is
// produced on demand: a Drain() waiter registers itself and wakes the
// worker, which flushes any buffered benign edges, republishes, and
// advances the drain cursor — so Drain() returning implies the published
// snapshot reflects every edge submitted before the Drain() call, while an
// undrained worker keeps its edge-grouping amortization instead of
// flushing every time its queue momentarily empties. While the worker is
// busy, the snapshot may trail the stream by at most the in-flight batch
// plus `detect_every` edges (all of them benign-buffered, which by Lemma
// 4.4 cannot have improved the community).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "storage/delta_segment.h"

// Snapshot publication uses std::atomic<std::shared_ptr> when the standard
// library provides it — except under ThreadSanitizer: libstdc++'s
// _Sp_atomic hides a lock bit inside the pointer word that TSan cannot see
// through, yielding false data-race reports. The fallback is a dedicated
// pointer-swap mutex, which is still never the apply-path lock, so the
// non-blocking read guarantee holds in both configurations.
#if defined(__SANITIZE_THREAD__)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#endif
#endif
#if !defined(SPADE_SNAPSHOT_PTR_MUTEX) && \
    defined(__cpp_lib_atomic_shared_ptr)
#define SPADE_SNAPSHOT_PTR_ATOMIC 1
#endif

namespace spade {

/// Invoked from the worker thread after a detection whose community differs
/// from the previously reported one. No service lock is held.
using FraudAlertFn = std::function<void(const Community&)>;

/// Invoked from the worker thread around a retire pass. Fires TWICE per
/// pass that deletes anything: once with count 0 BEFORE the first deletion
/// (so a consumer can drop state the deletions are about to invalidate —
/// e.g. a stale stitched snapshot — before any reader can observe the
/// shrunken graph), and once after the pass with the number of edges
/// retired. No service lock is held.
using RetireNotifyFn = std::function<void(std::size_t)>;

/// Invoked from the worker thread, inside the apply critical section, for
/// every applied edge (`retired` false, `applied` the semantic weight
/// ApplyEdge charged) and every window-expired edge (`retired` true,
/// `applied` the weight it was deleted at). The sharded service uses it to
/// push boundary-vertex weight updates into the per-shard-pair stitch
/// queues at apply time — running under the detector mutex is what
/// guarantees an edge visible in a state snapshot has already been pushed.
/// Keep it cheap; it is on the apply hot path. Not fired during
/// restore/replay (the boundary index restores from its own files).
using BoundaryUpdateFn = std::function<void(const Edge&, double, bool)>;

/// Per-shard service configuration (shared by DetectionService and every
/// shard of a ShardedDetectionService).
struct DetectionServiceOptions {
  /// Detect (and possibly alert) after at most this many applied edges even
  /// if no urgent edge forced a flush.
  std::size_t detect_every = 256;
  /// Bound on edges accepted but not yet taken off the handoff ring by the
  /// worker. The ring also has a bounded number of slabs
  /// (min(max_queue, 65536), rounded up to a power of two): a queue that is
  /// out of slabs but not out of edge budget — only possible when tens of
  /// thousands of single-edge Submits pile up against a stalled worker —
  /// counts as full as well.
  std::size_t max_queue = 1 << 20;
  /// When the buffer is full: false = Submit fails fast with kOutOfRange;
  /// true = Submit blocks until the worker frees space (backpressure
  /// propagates to producers instead of dropping transactions).
  bool block_when_full = false;
  /// Cap on the in-memory delta log (applied-history records kept for the
  /// next incremental checkpoint). A worker whose owner stops
  /// checkpointing must not grow without bound: at the cap the log is
  /// dropped and the next checkpoint falls back to a full snapshot.
  std::size_t max_delta_log = 1 << 20;
  /// CPU to pin the worker thread to (-1 = unpinned). Linux-only
  /// (pthread_setaffinity_np); elsewhere, and for CPUs that do not exist,
  /// the worker logs a warning and runs unpinned.
  int cpu = -1;
  /// Keep a per-edge window log (applied weight + event timestamp, arrival
  /// order) so SubmitRetire can expire edges. Off by default: an
  /// insert-only worker pays nothing for the window machinery.
  bool track_window = false;
};

/// One shard: a background worker draining a chunk-handoff ring through an
/// exclusively-owned Spade detector.
class ShardWorker {
 public:
  /// Takes ownership of a fully built detector (graph loaded, semantics
  /// installed). Edge grouping is turned on; the worker starts immediately.
  /// `on_retire` (optional) fires around every retire pass that removes at
  /// least one edge (see RetireNotifyFn); `on_boundary` (optional) fires
  /// per applied/retired edge inside the apply critical section (see
  /// BoundaryUpdateFn).
  ShardWorker(Spade spade, FraudAlertFn on_alert,
              DetectionServiceOptions options = {},
              RetireNotifyFn on_retire = nullptr,
              BoundaryUpdateFn on_boundary = nullptr);

  /// Stops the worker, draining queued edges first.
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Enqueues one transaction; callable from any thread. Fails with
  /// kFailedPrecondition after Stop(); when the buffer is full it either
  /// fails with kOutOfRange or blocks, per `block_when_full`. Lock-free
  /// unless the queue is full.
  Status Submit(const Edge& raw_edge);

  /// Bulk enqueue: one budget claim, one ring cell and (at most) one worker
  /// wakeup for the whole chunk — the high-throughput producer path.
  ///
  /// Without `accepted` the call is all-or-nothing: it fails with
  /// kOutOfRange (or blocks until the whole chunk fits) when the chunk does
  /// not fit, and with kInvalidArgument when it can never fit
  /// (chunk > max_queue); on failure nothing was enqueued.
  ///
  /// With `accepted` the call is best-effort and `*accepted` is always the
  /// exact number of edges enqueued (a prefix of the chunk): in fail-fast
  /// mode a full queue accepts the prefix that fits and returns
  /// kOutOfRange; in blocking mode the chunk may be handed over in pieces
  /// as space frees up (pieces from concurrent producers can interleave
  /// between them), and a Stop() arriving mid-wait returns
  /// kFailedPrecondition with the already-handed-over prefix counted.
  Status SubmitBatch(std::span<const Edge> raw_edges,
                     std::size_t* accepted = nullptr);

  /// Move-through variant: when the whole chunk is accepted in one piece
  /// (the common case), the vector becomes the ring slab directly — zero
  /// edge copies on this call. Falls back to copying (leaving `chunk`
  /// intact for the unaccepted suffix accounting) when backpressure splits
  /// or truncates the handoff; same contract as the span overload
  /// otherwise.
  Status SubmitBatch(std::vector<Edge>&& chunk,
                     std::size_t* accepted = nullptr);

  /// Enqueues a retire marker: when the worker reaches it, every window-log
  /// edge with ts < `horizon` is retired (deleted with its recorded applied
  /// weight) and logged as a retire record for the delta chain. The marker
  /// rides the same ring as edge chunks — it costs one unit of queue budget
  /// and obeys the same drain/exactness protocol, so Drain() after a
  /// successful SubmitRetire implies the retire pass has fully applied.
  /// Requires `track_window`; the window log is popped oldest-first, so an
  /// out-of-timestamp-order arrival delays expiry of the edges queued
  /// behind it until the horizon passes it too (conservative, never
  /// over-retires). Same full-queue behavior as Submit.
  Status SubmitRetire(Timestamp horizon);

  /// Blocks until every edge submitted before this call has been applied
  /// AND the published snapshot reflects them. Returns immediately once the
  /// worker has exited.
  void Drain();

  /// Bounded-wait Drain: returns true when the snapshot became exact (or
  /// the worker exited) within `timeout`, false when the deadline passed
  /// first — the caller's edges may still be in flight. Replication and
  /// promotion use this so a wedged shard surfaces as a status instead of
  /// hanging the control plane (DESIGN.md §7).
  bool DrainFor(std::chrono::milliseconds timeout);

  /// Drains, stops the worker and joins it. Idempotent.
  void Stop();

  /// Latest published community snapshot; never blocks on the apply path.
  /// The pointer is immutable and safe to hold across further updates.
  std::shared_ptr<const Community> CurrentSnapshot() const;

  /// Convenience copy of the latest snapshot.
  Community CurrentCommunity() const {
    const auto snap = CurrentSnapshot();
    return snap ? *snap : Community{};
  }

  /// Edges applied by the worker so far (relaxed; never takes a lock).
  std::uint64_t EdgesProcessed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  /// Alerts delivered so far (relaxed; never takes a lock).
  std::uint64_t AlertsDelivered() const {
    return alerts_.load(std::memory_order_relaxed);
  }

  /// Edges retired by window expiry so far (relaxed; never takes a lock).
  /// Incremented AFTER a pass's deletions — pair with RetireBegins() when
  /// checking whether deletions may have raced a measurement.
  std::uint64_t EdgesRetired() const {
    return retired_.load(std::memory_order_relaxed);
  }

  /// Retire passes that have ANNOUNCED deletions (bumped, with the
  /// pre-deletion on_retire callback, before the first edge is deleted).
  /// A measurement bracketed by equal (RetireBegins, EdgesRetired) pairs
  /// saw no deletion start or finish while it ran.
  std::uint64_t RetireBegins() const {
    return retire_begins_.load(std::memory_order_seq_cst);
  }

  /// Copy of the current window log (arrival order, applied weights).
  /// Takes the detector mutex; tests and diagnostics only.
  std::vector<Edge> WindowEdges() const;

  /// Detections (Detect + snapshot publications) run so far (lock-free).
  std::uint64_t DetectionsRun() const {
    return detections_.load(std::memory_order_relaxed);
  }

  /// Edges accepted but not yet taken off the ring by the worker (relaxed
  /// atomic; never takes a lock, may trail an in-flight handoff).
  std::size_t QueueDepth() const {
    return queued_edges_.load(std::memory_order_relaxed);
  }

  /// Highest queue depth ever observed at a successful enqueue (relaxed;
  /// never resets). The bench uses it to report handoff pressure: a
  /// high-water mark near max_queue means producers outran this shard.
  std::size_t QueueDepthHighWater() const {
    return queue_hwm_.load(std::memory_order_relaxed);
  }

  /// Copies the induced subgraph over `vertices` out of this shard's
  /// detector graph, for the cross-shard stitch pass: every out-edge of a
  /// listed vertex whose destination satisfies `contains` is appended to
  /// `edges` (global vertex ids, applied semantic weights — out-edges only,
  /// so an edge is emitted exactly once), and `vertex_weight[i]` is raised
  /// to this shard's prior for `vertices[i]`. Holds the detector mutex for
  /// the scan (O(out-degree sum of the listed vertices in this shard)), so
  /// it delays at most one in-flight apply and never touches the queue.
  /// Benign-buffered edges are not yet in the graph; a caller wanting them
  /// included drains first.
  void CollectInduced(std::span<const VertexId> vertices,
                      const std::function<bool(VertexId)>& contains,
                      std::vector<Edge>* edges,
                      std::vector<double>* vertex_weight) const;

  /// Result of one incremental checkpoint of this shard.
  struct DeltaSaveInfo {
    std::uint64_t bytes = 0;   // segment file size incl. trailer
    std::size_t edges = 0;     // edge records written
    std::size_t records = 0;   // edge + flush-marker records written
  };

  /// Everything needed to rebuild this shard to a checkpoint epoch: the
  /// already-validated base snapshot plus the validated delta chain. The
  /// caller (two-phase restore) parses and CRC-checks every file before
  /// constructing a plan, so applying one cannot half-fail on bad input.
  struct RestorePlan {
    DynamicGraph graph;
    PeelState state;
    bool state_present = false;
    std::vector<DeltaSegment> segments;  // ascending, contiguous epochs
    std::vector<Edge> window;  // base snapshot's window log (may be empty)
  };

  /// Drains, then persists the full detector state under the detector
  /// lock. Safe to call while producers keep submitting; the snapshot is a
  /// consistent prefix of the stream. A full save is a checkpoint: the
  /// delta log is reset, and with `start_delta_tracking` the worker begins
  /// (or continues) recording applied history for a future SaveDelta.
  Status SaveState(const std::string& path,
                   bool start_delta_tracking = false);

  /// Incremental checkpoint: drains, then writes only the applied history
  /// since the last checkpoint as a delta segment advancing `prev_epoch`
  /// -> `epoch`, and clears the log. Cost is O(edges since last
  /// checkpoint) — the detector state is not touched (no flush, no
  /// reorder). Fails with kFailedPrecondition when no checkpoint baseline
  /// exists (tracking never started) or the log overflowed
  /// `max_delta_log`; the caller falls back to a full SaveState.
  Status SaveDelta(const std::string& path, std::uint32_t shard,
                   std::uint64_t prev_epoch, std::uint64_t epoch,
                   DeltaSaveInfo* info = nullptr);

  /// Drains, then replaces the detector state from a snapshot written by
  /// SaveState. The detector's installed semantics are reused; the restored
  /// community is republished and becomes the alert baseline.
  Status RestoreState(const std::string& path);

  /// Drains, installs the plan's base state, and replays its delta chain
  /// through the normal ApplyEdge / Flush path — the restored detector
  /// re-makes exactly the decisions the live one made (DESIGN.md §5), so
  /// the result is bit-identical to the detector that wrote the chain.
  /// Leaves delta tracking armed for the next incremental checkpoint.
  /// Safe to run concurrently with other workers' RestoreChain calls (each
  /// worker only touches its own detector), which is how the sharded
  /// service parallelizes restore-side replay.
  Status RestoreChain(RestorePlan&& plan);

  /// Replays one already-validated delta segment on top of the current
  /// detector state — the warm-standby increment: a follower that restored
  /// epoch E applies the segment E -> E+1 without reloading the base.
  /// Replays through the same ApplyEdge / Flush path as RestoreChain, so
  /// the result stays bit-identical to the primary that wrote the segment.
  /// Fails with kFailedPrecondition when the queue cannot be drained
  /// within `drain_timeout` (a promoted follower must not replay into a
  /// detector with edges still in flight).
  Status ReplaySegment(const DeltaSegment& segment,
                       std::chrono::milliseconds drain_timeout);

  /// Runs `fn` on the detector under the detector mutex (tests and
  /// diagnostics: peel-state differentials, graph audits). Blocks this
  /// shard's apply path for the duration; never touches the queue.
  void InspectDetector(const std::function<void(const Spade&)>& fn) const;

 private:
  /// One handoff unit: a single inline edge (per-edge Submit pays no
  /// allocation), an owned slab of edges (SubmitBatch copies the caller's
  /// span once), or a retire marker (SubmitRetire) carrying the expiry
  /// horizon. A marker counts as one edge of queue budget so the shared
  /// claim/release/drain accounting needs no special case.
  struct Chunk {
    Chunk() = default;
    explicit Chunk(std::span<const Edge> edges) {
      if (edges.size() == 1) {
        one = edges[0];
        is_one = true;
      } else {
        many.assign(edges.begin(), edges.end());
      }
    }
    explicit Chunk(std::vector<Edge>&& edges) {
      if (edges.size() == 1) {
        one = edges[0];
        is_one = true;
      } else {
        many = std::move(edges);
      }
    }
    std::size_t size() const {
      return (is_one || is_retire) ? 1 : many.size();
    }
    Edge one{};
    bool is_one = false;
    bool is_retire = false;
    Timestamp retire_horizon = 0;
    std::vector<Edge> many;
  };

  /// One ring cell: Vyukov sequence stamp + the chunk payload. `seq == pos`
  /// means free for the producer claiming position `pos`; `seq == pos + 1`
  /// means published and ready for the consumer.
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    Chunk chunk;
  };

  void WorkerLoop();

  /// Shared enqueue path for Submit and SubmitBatch (see SubmitBatch for
  /// the partial-accept contract). `accepted` null = all-or-nothing.
  /// `owned` (optional) is the storage behind `edges`: when the whole
  /// chunk is accepted as one piece it is moved into the ring instead of
  /// copied.
  Status EnqueueImpl(std::span<const Edge> edges, std::size_t* accepted,
                     std::vector<Edge>* owned = nullptr);

  /// Shared CAS claim loop: claims up to `k` edges of budget (all-or-
  /// nothing unless `allow_partial`), updates the high-water mark, returns
  /// the claimed count (may be 0).
  std::size_t ClaimBudget(std::size_t k, bool allow_partial);
  /// Claims exactly `k` edges of queue budget; false when they do not fit.
  bool TryClaimBudget(std::size_t k);
  /// Claims up to `k` edges of budget; returns the claimed count (may be 0).
  std::size_t TryClaimUpTo(std::size_t k);
  /// Releases `k` edges of claimed budget (push failed or consumer done).
  void ReleaseBudget(std::size_t k);
  /// Vyukov multi-producer push; false when the ring is out of cells.
  bool TryPushChunk(Chunk&& chunk);
  /// Single-consumer pop (worker thread only); releases the popped edges'
  /// budget and returns false when no published cell is ready.
  bool TryPopChunk(Chunk* out);
  /// Worker thread only: is the next ring cell published? (Also evaluated
  /// inside the worker's own condvar predicate — never by other threads.)
  bool RingReady() const;
  /// Counts the chunk as accepted and wakes the worker iff it is parked.
  void PublishAccepted(std::size_t k);
  /// Wakes blocked producers iff any are registered.
  void NotifySpaceFreed();

  /// The old make-exact protocol: flush + republish for a Drain waiter,
  /// then advance the drain cursor if the ring stayed empty.
  void MakeExact();

  /// Appends one applied-history record (detector mutex held). Drops the
  /// whole log and marks overflow at the cap.
  void AppendDeltaRecord(const DeltaRecord& record);

  /// Chain-replay counterpart of one retire record (detector mutex held):
  /// re-runs the deletion with the recorded applied weight and removes the
  /// matching entry from the replayed window log.
  Status ReplayRetireLocked(const Edge& record);

  /// Re-baselines the alert filter on the current community and returns
  /// the snapshot to publish (detector mutex held). `flushed` selects
  /// Detect() (full restore: buffer is empty anyway) vs the non-flushing
  /// read (chain restore: the replayed benign buffer must survive so the
  /// restored detector keeps matching the live one).
  std::shared_ptr<const Community> RebaselineLocked(bool flush);

  /// Worker thread only: flushes + detects, publishes the snapshot, fires
  /// the alert callback if the community changed. No lock held during the
  /// callback.
  void DetectAndPublish();

  DetectionServiceOptions options_;
  FraudAlertFn on_alert_;

  // --- chunk-handoff ring (lock-free producer hot path) ------------------
  std::vector<Cell> ring_;    // power-of-two cells, fixed at construction
  std::uint64_t ring_mask_ = 0;
  std::atomic<std::uint64_t> enqueue_pos_{0};
  std::uint64_t dequeue_pos_ = 0;  // worker thread only
  /// Edges resident in the ring (claimed budget). seq_cst where it pairs
  /// with the park/space Dekker handshakes.
  std::atomic<std::size_t> queued_edges_{0};
  std::atomic<std::size_t> queue_hwm_{0};
  /// Edges accepted (published) by Submit/SubmitBatch — the Drain target.
  std::atomic<std::uint64_t> submitted_{0};
  /// Worker is (about to be) asleep on work_cv_; producers notify only
  /// when set (wakeup coalescing).
  std::atomic<bool> parked_{false};
  /// Producers blocked on space_cv_; the worker locks + notifies only when
  /// nonzero.
  std::atomic<std::size_t> space_waiters_{0};
  /// Lock-free mirror of stopping_ for the producer fast path.
  std::atomic<bool> stopping_flag_{false};

  // --- slow-path coordination (guarded by queue_mutex_) ------------------
  mutable std::mutex queue_mutex_;
  std::condition_variable work_cv_;   // signals the (parked) worker
  std::condition_variable drain_cv_;  // signals Drain() waiters
  std::condition_variable space_cv_;  // signals blocked producers
  bool stopping_ = false;
  bool worker_exited_ = false;
  std::size_t drain_waiters_ = 0;    // threads parked in Drain()
  std::uint64_t consumed_q_ = 0;     // mirror of consumed_ for predicates
  std::uint64_t exact_through_ = 0;  // edges reflected in an exact snapshot

  // --- detector, touched only by the worker thread (or by Save/Restore
  // while the worker is parked in its queue wait; detector_mutex_ makes
  // that exclusion explicit and TSan-visible). Never taken by readers. ----
  mutable std::mutex detector_mutex_;
  Spade spade_;
  std::vector<VertexId> last_reported_;
  double last_density_ = -1.0;
  std::size_t since_detect_ = 0;
  std::uint64_t consumed_ = 0;  // edges taken off the queue by the worker
  // Set by DetectAndPublish when the community changed; the worker moves it
  // out and fires the callback after releasing detector_mutex_.
  std::shared_ptr<const Community> pending_alert_;
  // Applied-history log for incremental checkpoints (DESIGN.md §5): raw
  // edges in application order plus a marker at every benign-buffer flush.
  // Guarded by detector_mutex_ like the detector it mirrors.
  bool delta_tracking_ = false;
  bool delta_overflow_ = false;
  std::vector<DeltaRecord> delta_log_;
  // Window log (track_window only): every applied edge in arrival order,
  // carrying its applied weight and event timestamp — exactly what a
  // retire pass must subtract. Guarded by detector_mutex_. Bounded by the
  // window: retire passes pop the expired prefix.
  std::deque<Edge> window_log_;

  // --- published state (lock-free readers) -------------------------------
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  std::atomic<std::shared_ptr<const Community>> snapshot_;
#else
  // Fallback (pre-C++20 library or TSan build): a dedicated pointer-swap
  // mutex — still never the apply-path mutex, so readers cannot block
  // behind a reorder.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Community> snapshot_;
#endif
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> alerts_{0};
  std::atomic<std::uint64_t> detections_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> retire_begins_{0};
  RetireNotifyFn on_retire_;
  BoundaryUpdateFn on_boundary_;

  std::thread worker_;
};

}  // namespace spade
