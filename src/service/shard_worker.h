// ShardWorker: one detector shard with a lock-split update pipeline.
//
// The worker owns a Spade instance exclusively; no other thread ever calls
// into the detector while the worker runs. The three client-visible paths
// are decoupled so none of them serializes on an in-flight reorder:
//
//   * Submit: producers append to a small swap buffer under `queue_mutex_`,
//     which is held only for the push itself. The worker swaps the whole
//     buffer out under the same mutex and applies it with no lock held, so
//     producer latency is one uncontended push regardless of how expensive
//     the current batch reorder is.
//   * CurrentCommunity / CurrentSnapshot: the worker publishes each
//     detected community as an atomically-swapped shared_ptr snapshot.
//     Readers load the pointer and never touch any mutex on the apply path.
//   * EdgesProcessed / AlertsDelivered: relaxed atomics.
//
// Alerts are delivered from the worker thread with no service lock held
// (the snapshot is taken first), so a slow moderator callback can delay the
// next detection but never blocks producers or readers.
//
// Snapshot-publication protocol (DESIGN.md §4.2): the worker republishes on
// every detection (urgent flush or detect_every cadence). Exactness is
// produced on demand: a Drain() waiter registers itself and wakes the
// worker, which flushes any buffered benign edges, republishes, and
// advances the drain cursor — so Drain() returning implies the published
// snapshot reflects every edge submitted before the Drain() call, while an
// undrained worker keeps its edge-grouping amortization instead of
// flushing every time its queue momentarily empties. While the worker is
// busy, the snapshot may trail the stream by at most the in-flight batch
// plus `detect_every` edges (all of them benign-buffered, which by Lemma
// 4.4 cannot have improved the community).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "storage/delta_segment.h"

// Snapshot publication uses std::atomic<std::shared_ptr> when the standard
// library provides it — except under ThreadSanitizer: libstdc++'s
// _Sp_atomic hides a lock bit inside the pointer word that TSan cannot see
// through, yielding false data-race reports. The fallback is a dedicated
// pointer-swap mutex, which is still never the apply-path lock, so the
// non-blocking read guarantee holds in both configurations.
#if defined(__SANITIZE_THREAD__)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#endif
#endif
#if !defined(SPADE_SNAPSHOT_PTR_MUTEX) && \
    defined(__cpp_lib_atomic_shared_ptr)
#define SPADE_SNAPSHOT_PTR_ATOMIC 1
#endif

namespace spade {

/// Invoked from the worker thread after a detection whose community differs
/// from the previously reported one. No service lock is held.
using FraudAlertFn = std::function<void(const Community&)>;

/// Per-shard service configuration (shared by DetectionService and every
/// shard of a ShardedDetectionService).
struct DetectionServiceOptions {
  /// Detect (and possibly alert) after at most this many applied edges even
  /// if no urgent edge forced a flush.
  std::size_t detect_every = 256;
  /// Bound on the submission buffer (edges accepted but not yet swapped
  /// into the worker).
  std::size_t max_queue = 1 << 20;
  /// When the buffer is full: false = Submit fails fast with kOutOfRange;
  /// true = Submit blocks until the worker frees space (backpressure
  /// propagates to producers instead of dropping transactions).
  bool block_when_full = false;
  /// Cap on the in-memory delta log (applied-history records kept for the
  /// next incremental checkpoint). A worker whose owner stops
  /// checkpointing must not grow without bound: at the cap the log is
  /// dropped and the next checkpoint falls back to a full snapshot.
  std::size_t max_delta_log = 1 << 20;
};

/// One shard: a background worker draining a swap-buffer queue through an
/// exclusively-owned Spade detector.
class ShardWorker {
 public:
  /// Takes ownership of a fully built detector (graph loaded, semantics
  /// installed). Edge grouping is turned on; the worker starts immediately.
  ShardWorker(Spade spade, FraudAlertFn on_alert,
              DetectionServiceOptions options = {});

  /// Stops the worker, draining queued edges first.
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Enqueues one transaction; callable from any thread. Fails with
  /// kFailedPrecondition after Stop(); when the buffer is full it either
  /// fails with kOutOfRange or blocks, per `block_when_full`.
  Status Submit(const Edge& raw_edge);

  /// Bulk enqueue: one lock acquisition and one worker wakeup for the whole
  /// chunk — the high-throughput producer path (a per-edge Submit against a
  /// fast worker degenerates into one futex round-trip per edge). All-or-
  /// nothing: fails with kOutOfRange (or blocks) if the chunk does not fit,
  /// and with kInvalidArgument if it can never fit (chunk > max_queue).
  Status SubmitBatch(std::span<const Edge> raw_edges);

  /// Blocks until every edge submitted before this call has been applied
  /// AND the published snapshot reflects them. Returns immediately once the
  /// worker has exited.
  void Drain();

  /// Drains, stops the worker and joins it. Idempotent.
  void Stop();

  /// Latest published community snapshot; never blocks on the apply path.
  /// The pointer is immutable and safe to hold across further updates.
  std::shared_ptr<const Community> CurrentSnapshot() const;

  /// Convenience copy of the latest snapshot.
  Community CurrentCommunity() const {
    const auto snap = CurrentSnapshot();
    return snap ? *snap : Community{};
  }

  /// Edges applied by the worker so far (relaxed; never takes a lock).
  std::uint64_t EdgesProcessed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  /// Alerts delivered so far (relaxed; never takes a lock).
  std::uint64_t AlertsDelivered() const {
    return alerts_.load(std::memory_order_relaxed);
  }

  /// Detections (Detect + snapshot publications) run so far (lock-free).
  std::uint64_t DetectionsRun() const {
    return detections_.load(std::memory_order_relaxed);
  }

  /// Edges accepted but not yet swapped into the worker (relaxed atomic;
  /// never takes a lock, may trail the queue by an in-flight push).
  std::size_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Copies the induced subgraph over `vertices` out of this shard's
  /// detector graph, for the cross-shard stitch pass: every out-edge of a
  /// listed vertex whose destination satisfies `contains` is appended to
  /// `edges` (global vertex ids, applied semantic weights — out-edges only,
  /// so an edge is emitted exactly once), and `vertex_weight[i]` is raised
  /// to this shard's prior for `vertices[i]`. Holds the detector mutex for
  /// the scan (O(out-degree sum of the listed vertices in this shard)), so
  /// it delays at most one in-flight apply and never touches the queue.
  /// Benign-buffered edges are not yet in the graph; a caller wanting them
  /// included drains first.
  void CollectInduced(std::span<const VertexId> vertices,
                      const std::function<bool(VertexId)>& contains,
                      std::vector<Edge>* edges,
                      std::vector<double>* vertex_weight) const;

  /// Result of one incremental checkpoint of this shard.
  struct DeltaSaveInfo {
    std::uint64_t bytes = 0;   // segment file size incl. trailer
    std::size_t edges = 0;     // edge records written
    std::size_t records = 0;   // edge + flush-marker records written
  };

  /// Everything needed to rebuild this shard to a checkpoint epoch: the
  /// already-validated base snapshot plus the validated delta chain. The
  /// caller (two-phase restore) parses and CRC-checks every file before
  /// constructing a plan, so applying one cannot half-fail on bad input.
  struct RestorePlan {
    DynamicGraph graph;
    PeelState state;
    bool state_present = false;
    std::vector<DeltaSegment> segments;  // ascending, contiguous epochs
  };

  /// Drains, then persists the full detector state under the detector
  /// lock. Safe to call while producers keep submitting; the snapshot is a
  /// consistent prefix of the stream. A full save is a checkpoint: the
  /// delta log is reset, and with `start_delta_tracking` the worker begins
  /// (or continues) recording applied history for a future SaveDelta.
  Status SaveState(const std::string& path,
                   bool start_delta_tracking = false);

  /// Incremental checkpoint: drains, then writes only the applied history
  /// since the last checkpoint as a delta segment advancing `prev_epoch`
  /// -> `epoch`, and clears the log. Cost is O(edges since last
  /// checkpoint) — the detector state is not touched (no flush, no
  /// reorder). Fails with kFailedPrecondition when no checkpoint baseline
  /// exists (tracking never started) or the log overflowed
  /// `max_delta_log`; the caller falls back to a full SaveState.
  Status SaveDelta(const std::string& path, std::uint32_t shard,
                   std::uint64_t prev_epoch, std::uint64_t epoch,
                   DeltaSaveInfo* info = nullptr);

  /// Drains, then replaces the detector state from a snapshot written by
  /// SaveState. The detector's installed semantics are reused; the restored
  /// community is republished and becomes the alert baseline.
  Status RestoreState(const std::string& path);

  /// Drains, installs the plan's base state, and replays its delta chain
  /// through the normal ApplyEdge / Flush path — the restored detector
  /// re-makes exactly the decisions the live one made (DESIGN.md §5), so
  /// the result is bit-identical to the detector that wrote the chain.
  /// Leaves delta tracking armed for the next incremental checkpoint.
  Status RestoreChain(RestorePlan&& plan);

  /// Runs `fn` on the detector under the detector mutex (tests and
  /// diagnostics: peel-state differentials, graph audits). Blocks this
  /// shard's apply path for the duration; never touches the queue.
  void InspectDetector(const std::function<void(const Spade&)>& fn) const;

 private:
  void WorkerLoop();

  /// Appends one applied-history record (detector mutex held). Drops the
  /// whole log and marks overflow at the cap.
  void AppendDeltaRecord(const DeltaRecord& record);

  /// Re-baselines the alert filter on the current community and returns
  /// the snapshot to publish (detector mutex held). `flushed` selects
  /// Detect() (full restore: buffer is empty anyway) vs the non-flushing
  /// read (chain restore: the replayed benign buffer must survive so the
  /// restored detector keeps matching the live one).
  std::shared_ptr<const Community> RebaselineLocked(bool flush);

  /// Worker thread only: flushes + detects, publishes the snapshot, fires
  /// the alert callback if the community changed. No lock held during the
  /// callback.
  void DetectAndPublish();

  DetectionServiceOptions options_;
  FraudAlertFn on_alert_;

  // --- producer/worker handoff (all guarded by queue_mutex_) -------------
  mutable std::mutex queue_mutex_;
  std::condition_variable work_cv_;   // signals the worker
  std::condition_variable drain_cv_;  // signals Drain() waiters
  std::condition_variable space_cv_;  // signals blocked producers
  std::vector<Edge> producer_buffer_;
  bool stopping_ = false;
  bool worker_exited_ = false;
  std::size_t drain_waiters_ = 0;    // threads parked in Drain()
  std::uint64_t submitted_ = 0;      // edges accepted by Submit
  std::uint64_t consumed_q_ = 0;     // mirror of consumed_ for predicates
  std::uint64_t exact_through_ = 0;  // edges reflected in an exact snapshot

  // --- detector, touched only by the worker thread (or by Save/Restore
  // while the worker is parked in its queue wait; detector_mutex_ makes
  // that exclusion explicit and TSan-visible). Never taken by readers. ----
  mutable std::mutex detector_mutex_;
  Spade spade_;
  std::vector<VertexId> last_reported_;
  double last_density_ = -1.0;
  std::size_t since_detect_ = 0;
  std::uint64_t consumed_ = 0;  // edges taken off the queue by the worker
  // Set by DetectAndPublish when the community changed; the worker moves it
  // out and fires the callback after releasing detector_mutex_.
  std::shared_ptr<const Community> pending_alert_;
  // Applied-history log for incremental checkpoints (DESIGN.md §5): raw
  // edges in application order plus a marker at every benign-buffer flush.
  // Guarded by detector_mutex_ like the detector it mirrors.
  bool delta_tracking_ = false;
  bool delta_overflow_ = false;
  std::vector<DeltaRecord> delta_log_;

  // --- published state (lock-free readers) -------------------------------
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  std::atomic<std::shared_ptr<const Community>> snapshot_;
#else
  // Fallback (pre-C++20 library or TSan build): a dedicated pointer-swap
  // mutex — still never the apply-path mutex, so readers cannot block
  // behind a reorder.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Community> snapshot_;
#endif
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> alerts_{0};
  std::atomic<std::uint64_t> detections_{0};
  // Mirror of producer_buffer_.size(), updated under queue_mutex_ but read
  // lock-free by QueueDepth()/GetStats().
  std::atomic<std::size_t> queue_depth_{0};

  std::thread worker_;
};

}  // namespace spade
