// ShardWorker: one worker thread draining a lock-light chunk-handoff queue
// through a set of exclusively-owned detector partitions.
//
// Historically a worker WAS a detector. Work-stealing rebalance (DESIGN.md
// §10) splits that fusion: a worker now owns a set of epoch-versioned
// *partitions* — each a Spade detector plus its window log, delta log and
// alert baseline — and a partition can be detached from a loaded worker
// and attached to an idle one at a drain boundary, moving the detector by
// pointer. With a single partition and no partition function (the default,
// and everything DetectionService uses) the worker behaves exactly as
// before.
//
// The three client-visible paths are decoupled so none of them serializes
// on an in-flight reorder:
//
//   * Submit / SubmitBatch: producers hand whole chunks of edges to the
//     worker through a bounded MPSC ring of edge slabs (Vyukov-style
//     sequence-stamped cells). The hot path is entirely lock-free: claim
//     queue budget with one CAS, claim a ring cell with one CAS, publish
//     the cell's sequence word. A mutex is touched only on the slow paths
//     (full queue in blocking mode, parking, Drain) — never per edge, and
//     never per chunk while the pipeline keeps up.
//   * CurrentCommunity / CurrentSnapshot: the worker publishes the densest
//     community across its partitions as an atomically-swapped shared_ptr
//     snapshot. Readers load the pointer and never touch any mutex on the
//     apply path.
//   * EdgesProcessed / AlertsDelivered / QueueDepth: relaxed atomics.
//
// Forwarding protocol: an edge popped off the ring whose partition this
// worker does NOT own (it was routed under a stale partition-map entry
// while the partition moved) goes to a worker-local forward backlog and is
// re-submitted to the current owner via the service-provided ForwardFn —
// applied exactly once, at the owner. Edges are counted as consumed at
// their final disposal (local apply, or accepted forward), and the drain
// cursor only advances while the backlog is empty, so Drain() still means
// "everything this worker accepted has been applied somewhere or handed to
// its owner".
//
// Wakeup coalescing: producers notify the worker only when it is actually
// parked (`parked_` is set, seq_cst, before the worker re-checks the ring
// and waits; producers publish, then load `parked_` — the classic Dekker
// handshake, so either the worker sees the new slab or the producer sees
// the parked flag and wakes it). A producer feeding a busy worker performs
// zero syscalls and zero lock acquisitions per chunk.
//
// Alerts are delivered from the worker thread with no service lock held
// (the snapshot is taken first), so a slow moderator callback can delay the
// next detection but never blocks producers or readers.
//
// Snapshot-publication protocol (DESIGN.md §4.2): the worker republishes on
// every detection (urgent flush or detect_every cadence). Exactness is
// produced on demand: a Drain() waiter registers itself and wakes the
// worker, which flushes any buffered benign edges, republishes, and
// advances the drain cursor — so Drain() returning implies the published
// snapshot reflects every edge submitted before the Drain() call, while an
// undrained worker keeps its edge-grouping amortization instead of
// flushing every time its queue momentarily empties. While the worker is
// busy, the snapshot may trail the stream by at most the in-flight batch
// plus `detect_every` edges (all of them benign-buffered, which by Lemma
// 4.4 cannot have improved the community).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/slab_pool.h"
#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "storage/delta_segment.h"

// Snapshot publication uses std::atomic<std::shared_ptr> when the standard
// library provides it — except under ThreadSanitizer: libstdc++'s
// _Sp_atomic hides a lock bit inside the pointer word that TSan cannot see
// through, yielding false data-race reports. The fallback is a dedicated
// pointer-swap mutex, which is still never the apply-path lock, so the
// non-blocking read guarantee holds in both configurations.
#if defined(__SANITIZE_THREAD__)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPADE_SNAPSHOT_PTR_MUTEX 1
#endif
#endif
#if !defined(SPADE_SNAPSHOT_PTR_MUTEX) && \
    defined(__cpp_lib_atomic_shared_ptr)
#define SPADE_SNAPSHOT_PTR_ATOMIC 1
#endif

namespace spade {

/// Invoked from the worker thread after a detection whose community differs
/// from the previously reported one. No service lock is held.
using FraudAlertFn = std::function<void(const Community&)>;

/// Invoked from the worker thread around a retire pass. Fires TWICE per
/// pass that deletes anything: once with count 0 BEFORE the first deletion
/// (so a consumer can drop state the deletions are about to invalidate —
/// e.g. a stale stitched snapshot — before any reader can observe the
/// shrunken graph), and once after the pass with the number of edges
/// retired. No service lock is held.
using RetireNotifyFn = std::function<void(std::size_t)>;

/// Invoked from the worker thread, inside the apply critical section, for
/// every applied edge (`retired` false, `applied` the semantic weight
/// ApplyEdge charged) and every window-expired edge (`retired` true,
/// `applied` the weight it was deleted at). The sharded service uses it to
/// push boundary-vertex weight updates into the per-partition-pair stitch
/// queues at apply time — running under the detector mutex is what
/// guarantees an edge visible in a state snapshot has already been pushed.
/// Keyed by partition home, so the record survives a partition move. Keep
/// it cheap; it is on the apply hot path. Not fired during restore/replay
/// (the boundary index restores from its own files).
using BoundaryUpdateFn = std::function<void(const Edge&, double, bool)>;

/// Maps an edge to its stable partition id. Evaluated under the detector
/// mutex for every applied edge, so keep it cheap. Null = the worker owns
/// exactly one partition and every routed edge belongs to it.
using PartitionOfFn = std::function<std::size_t(const Edge&)>;

/// Re-submits edges that arrived at a worker which no longer owns their
/// partition to the current owner. Must NOT block (it runs on the victim's
/// worker thread; a blocking forward between two full workers deadlocks) —
/// it returns the length of the accepted PREFIX, and the worker retries
/// the remainder later. Called with no worker lock held.
using ForwardFn = std::function<std::size_t(std::span<const Edge>)>;

/// Per-shard service configuration (shared by DetectionService and every
/// shard of a ShardedDetectionService).
struct DetectionServiceOptions {
  /// Detect (and possibly alert) after at most this many applied edges even
  /// if no urgent edge forced a flush.
  std::size_t detect_every = 256;
  /// Bound on edges accepted but not yet taken off the handoff ring by the
  /// worker. The ring also has a bounded number of slabs
  /// (min(max_queue, 65536), rounded up to a power of two): a queue that is
  /// out of slabs but not out of edge budget — only possible when tens of
  /// thousands of single-edge Submits pile up against a stalled worker —
  /// counts as full as well.
  std::size_t max_queue = 1 << 20;
  /// When the buffer is full: false = Submit fails fast with kOutOfRange;
  /// true = Submit blocks until the worker frees space (backpressure
  /// propagates to producers instead of dropping transactions).
  bool block_when_full = false;
  /// Cap on the in-memory delta log (applied-history records kept for the
  /// next incremental checkpoint), per partition. A worker whose owner
  /// stops checkpointing must not grow without bound: at the cap the log
  /// is dropped and the next checkpoint falls back to a full snapshot.
  std::size_t max_delta_log = 1 << 20;
  /// CPU to pin the worker thread to (-1 = unpinned). Linux-only
  /// (pthread_setaffinity_np); elsewhere, and for CPUs that do not exist,
  /// the worker logs a warning and runs unpinned.
  int cpu = -1;
  /// Keep a per-edge window log (applied weight + event timestamp, arrival
  /// order) so SubmitRetire can expire edges. Off by default: an
  /// insert-only worker pays nothing for the window machinery.
  bool track_window = false;
};

/// One worker: a background thread draining a chunk-handoff ring through a
/// set of exclusively-owned Spade detector partitions.
class ShardWorker {
 public:
  /// One movable unit of detector state: the Spade instance plus every
  /// piece of per-detector bookkeeping that must travel with it in a
  /// steal — window log, delta log, alert baseline, cached community.
  /// Owned by exactly one worker at a time (or by the service, briefly,
  /// between Detach and Attach); all fields are guarded by the owning
  /// worker's detector mutex.
  struct Partition {
    Partition(std::size_t id, Spade detector)
        : pid(id), spade(std::move(detector)) {}

    const std::size_t pid;
    Spade spade;
    /// Alert baseline: last reported community (sorted) + density.
    std::vector<VertexId> last_reported;
    double last_density = -1.0;
    std::size_t since_detect = 0;
    /// Applied-history log for incremental checkpoints (DESIGN.md §5).
    bool delta_tracking = false;
    bool delta_overflow = false;
    std::vector<DeltaRecord> delta_log;
    /// Window log (track_window only): applied edges in arrival order with
    /// applied weight + event timestamp.
    std::deque<Edge> window_log;
    /// Latest detected community for this partition (feeds the worker's
    /// published argmax snapshot).
    std::shared_ptr<const Community> current;
    /// Edges applied since the last PartitionLoads() scan — the steal
    /// policy's per-partition load signal.
    std::uint64_t recent_load = 0;
  };

  /// Initial partition assignment for the multi-partition constructor.
  struct PartitionSeed {
    std::size_t pid = 0;
    Spade spade;
  };

  /// Single-partition worker (the pre-rebalance shape; DetectionService
  /// and non-rebalancing fleets use this). Takes ownership of a fully
  /// built detector (graph loaded, semantics installed). Edge grouping is
  /// turned on; the worker starts immediately. `on_retire` (optional)
  /// fires around every retire pass that removes at least one edge (see
  /// RetireNotifyFn); `on_boundary` (optional) fires per applied/retired
  /// edge inside the apply critical section (see BoundaryUpdateFn).
  ShardWorker(Spade spade, FraudAlertFn on_alert,
              DetectionServiceOptions options = {},
              RetireNotifyFn on_retire = nullptr,
              BoundaryUpdateFn on_boundary = nullptr);

  /// Multi-partition worker. `total_partitions` sizes the pid lookup table
  /// (a detached partition's slot goes null; AttachPartition refills it).
  /// `partition_of` maps an edge to its pid (null = sole-partition mode:
  /// requires exactly one seed); `forward` re-submits edges for partitions
  /// this worker does not own (null = unowned edges are dropped with a
  /// warning — only sound when partitions never move). `slab_pool`
  /// (optional) receives consumed batch slabs for recycling.
  ShardWorker(std::vector<PartitionSeed> seeds, std::size_t total_partitions,
              PartitionOfFn partition_of, ForwardFn forward,
              FraudAlertFn on_alert, DetectionServiceOptions options = {},
              RetireNotifyFn on_retire = nullptr,
              BoundaryUpdateFn on_boundary = nullptr,
              std::shared_ptr<SlabPool> slab_pool = nullptr);

  /// Stops the worker, draining queued edges first.
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Enqueues one transaction; callable from any thread. Fails with
  /// kFailedPrecondition after Stop(); when the buffer is full it either
  /// fails with kOutOfRange or blocks, per `block_when_full`. Lock-free
  /// unless the queue is full.
  Status Submit(const Edge& raw_edge);

  /// Bulk enqueue: one budget claim, one ring cell and (at most) one worker
  /// wakeup for the whole chunk — the high-throughput producer path.
  ///
  /// Without `accepted` the call is all-or-nothing: it fails with
  /// kOutOfRange (or blocks until the whole chunk fits) when the chunk does
  /// not fit, and with kInvalidArgument when it can never fit
  /// (chunk > max_queue); on failure nothing was enqueued.
  ///
  /// With `accepted` the call is best-effort and `*accepted` is always the
  /// exact number of edges enqueued (a prefix of the chunk): in fail-fast
  /// mode a full queue accepts the prefix that fits and returns
  /// kOutOfRange; in blocking mode the chunk may be handed over in pieces
  /// as space frees up (pieces from concurrent producers can interleave
  /// between them), and a Stop() arriving mid-wait returns
  /// kFailedPrecondition with the already-handed-over prefix counted.
  Status SubmitBatch(std::span<const Edge> raw_edges,
                     std::size_t* accepted = nullptr);

  /// Move-through variant: when the whole chunk is accepted in one piece
  /// (the common case), the vector becomes the ring slab directly — zero
  /// edge copies on this call. Falls back to copying (leaving `chunk`
  /// intact for the unaccepted suffix accounting) when backpressure splits
  /// or truncates the handoff; same contract as the span overload
  /// otherwise.
  Status SubmitBatch(std::vector<Edge>&& chunk,
                     std::size_t* accepted = nullptr);

  /// Never-blocking best-effort enqueue: accepts the prefix that fits
  /// right now and returns its length (0 when the queue is full or the
  /// worker stopped), regardless of `block_when_full`. This is the
  /// forwarding entry point — a victim's worker thread re-submitting
  /// moved-partition edges must not park inside another worker's
  /// backpressure wait.
  std::size_t OfferBatch(std::span<const Edge> edges);

  /// Enqueues a retire marker: when the worker reaches it, every window-log
  /// edge with ts < `horizon` (in every owned partition) is retired
  /// (deleted with its recorded applied weight) and logged as a retire
  /// record for the delta chain. The marker rides the same ring as edge
  /// chunks — it costs one unit of queue budget and obeys the same
  /// drain/exactness protocol, so Drain() after a successful SubmitRetire
  /// implies the retire pass has fully applied. Requires `track_window`;
  /// each window log is popped oldest-first, so an out-of-timestamp-order
  /// arrival delays expiry of the edges queued behind it until the horizon
  /// passes it too (conservative, never over-retires). Same full-queue
  /// behavior as Submit.
  Status SubmitRetire(Timestamp horizon);

  /// Blocks until every edge submitted before this call has been applied
  /// (or handed to its current owner, for partitions that moved away) AND
  /// the published snapshot reflects the locally-applied ones. Returns
  /// immediately once the worker has exited.
  void Drain();

  /// Bounded-wait Drain: returns true when the snapshot became exact (or
  /// the worker exited) within `timeout`, false when the deadline passed
  /// first — the caller's edges may still be in flight. Replication and
  /// promotion use this so a wedged shard surfaces as a status instead of
  /// hanging the control plane (DESIGN.md §7).
  bool DrainFor(std::chrono::milliseconds timeout);

  /// Drains, stops the worker and joins it. Idempotent.
  void Stop();

  /// Latest published community snapshot — the densest community across
  /// this worker's partitions; never blocks on the apply path. The pointer
  /// is immutable and safe to hold across further updates.
  std::shared_ptr<const Community> CurrentSnapshot() const;

  /// Convenience copy of the latest snapshot.
  Community CurrentCommunity() const {
    const auto snap = CurrentSnapshot();
    return snap ? *snap : Community{};
  }

  /// Edges applied by the worker so far (relaxed; never takes a lock).
  std::uint64_t EdgesProcessed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  /// Alerts delivered so far (relaxed; never takes a lock).
  std::uint64_t AlertsDelivered() const {
    return alerts_.load(std::memory_order_relaxed);
  }

  /// Edges retired by window expiry so far (relaxed; never takes a lock).
  /// Incremented AFTER a pass's deletions — pair with RetireBegins() when
  /// checking whether deletions may have raced a measurement.
  std::uint64_t EdgesRetired() const {
    return retired_.load(std::memory_order_relaxed);
  }

  /// Retire passes that have ANNOUNCED deletions (bumped, with the
  /// pre-deletion on_retire callback, before the first edge is deleted).
  /// A measurement bracketed by equal (RetireBegins, EdgesRetired) pairs
  /// saw no deletion start or finish while it ran.
  std::uint64_t RetireBegins() const {
    return retire_begins_.load(std::memory_order_seq_cst);
  }

  /// Copy of the current window log(s), partitions in ascending-pid order,
  /// arrival order within each (applied weights). Takes the detector
  /// mutex; tests and diagnostics only.
  std::vector<Edge> WindowEdges() const;

  /// Copy of one partition's window log (arrival order, applied weights).
  std::vector<Edge> PartitionWindowEdges(std::size_t pid) const;

  /// Detections (Detect + snapshot publications) run so far (lock-free).
  std::uint64_t DetectionsRun() const {
    return detections_.load(std::memory_order_relaxed);
  }

  /// Edges accepted (published into the ring) so far — the Drain target.
  std::uint64_t Submitted() const {
    return submitted_.load(std::memory_order_seq_cst);
  }

  /// Edges accepted but not yet taken off the ring by the worker (relaxed
  /// atomic; never takes a lock, may trail an in-flight handoff).
  std::size_t QueueDepth() const {
    return queued_edges_.load(std::memory_order_relaxed);
  }

  /// Highest queue depth observed at a successful enqueue since the last
  /// ResetHighWater() (relaxed; never takes a lock). The bench uses it to
  /// report handoff pressure: a high-water mark near max_queue means
  /// producers outran this shard.
  std::size_t QueueDepthHighWater() const {
    const std::size_t recent =
        queue_hwm_recent_.load(std::memory_order_relaxed);
    const std::size_t total =
        queue_hwm_total_.load(std::memory_order_relaxed);
    return recent > total ? recent : total;
  }

  /// Drains the RECENT high-water mark (and folds it into the long-run
  /// one): returns the highest depth observed since the previous call.
  /// The rebalancer polls this per scan, so its skew signal measures the
  /// current interval instead of an admission-phase peak from minutes ago.
  std::size_t TakeRecentHighWater();

  /// Zeroes both high-water marks (recent and long-run). Phase-structured
  /// measurements (admission vs drain in ReplayThroughService) reset
  /// between phases so the second phase's peak is not masked by the first.
  void ResetHighWater();

  /// Fraction of wall time since construction the worker spent applying
  /// edges / retires (busy), as opposed to parked or gathering. Relaxed.
  double BusyFraction() const;

  /// Ascending pids of the partitions this worker currently owns.
  std::vector<std::size_t> OwnedPartitions() const;

  /// Per-partition applied-edge counts since the previous call
  /// (exchange-reset under the detector mutex): the steal policy's load
  /// signal. Pairs of {pid, edges applied}.
  std::vector<std::pair<std::size_t, std::uint64_t>> PartitionLoads();

  /// Detaches an owned partition for a move: removes it from the ownership
  /// table (subsequent ring edges for this pid go to the forward backlog)
  /// and republishes the snapshot without it. Returns null when this
  /// worker does not own `pid`. The caller (the service, under its
  /// rebalance lock) attaches the partition to its new owner and THEN
  /// publishes the routing change.
  std::unique_ptr<Partition> DetachPartition(std::size_t pid);

  /// Attaches a partition (from DetachPartition on another worker) and
  /// republishes the snapshot including it.
  void AttachPartition(std::unique_ptr<Partition> partition);

  /// Copies the induced subgraph over `vertices` out of every owned
  /// partition's detector graph, for the cross-shard stitch pass: every
  /// out-edge of a listed vertex whose destination satisfies `contains` is
  /// appended to `edges` (global vertex ids, applied semantic weights —
  /// out-edges only, so an edge is emitted exactly once), and
  /// `vertex_weight[i]` is raised to this worker's prior for
  /// `vertices[i]`. Holds the detector mutex for the scan (O(out-degree
  /// sum of the listed vertices)), so it delays at most one in-flight
  /// apply and never touches the queue. Benign-buffered edges are not yet
  /// in the graph; a caller wanting them included drains first.
  void CollectInduced(std::span<const VertexId> vertices,
                      const std::function<bool(VertexId)>& contains,
                      std::vector<Edge>* edges,
                      std::vector<double>* vertex_weight) const;

  /// Result of one incremental checkpoint of a partition.
  struct DeltaSaveInfo {
    std::uint64_t bytes = 0;   // segment file size incl. trailer
    std::size_t edges = 0;     // edge records written
    std::size_t records = 0;   // edge + flush-marker records written
  };

  /// Everything needed to rebuild one partition to a checkpoint epoch: the
  /// already-validated base snapshot plus the validated delta chain. The
  /// caller (two-phase restore) parses and CRC-checks every file before
  /// constructing a plan, so applying one cannot half-fail on bad input.
  struct RestorePlan {
    DynamicGraph graph;
    PeelState state;
    bool state_present = false;
    std::vector<DeltaSegment> segments;  // ascending, contiguous epochs
    std::vector<Edge> window;  // base snapshot's window log (may be empty)
  };

  // --- sole-partition persistence (DetectionService and single-partition
  // fleets; fails kFailedPrecondition when the worker does not own exactly
  // one partition) ----------------------------------------------------------

  /// Drains, then persists the full detector state under the detector
  /// lock. Safe to call while producers keep submitting; the snapshot is a
  /// consistent prefix of the stream. A full save is a checkpoint: the
  /// delta log is reset, and with `start_delta_tracking` the worker begins
  /// (or continues) recording applied history for a future SaveDelta.
  Status SaveState(const std::string& path,
                   bool start_delta_tracking = false);

  /// Incremental checkpoint: drains, then writes only the applied history
  /// since the last checkpoint as a delta segment advancing `prev_epoch`
  /// -> `epoch`, and clears the log. Cost is O(edges since last
  /// checkpoint) — the detector state is not touched (no flush, no
  /// reorder). Fails with kFailedPrecondition when no checkpoint baseline
  /// exists (tracking never started) or the log overflowed
  /// `max_delta_log`; the caller falls back to a full SaveState.
  Status SaveDelta(const std::string& path, std::uint32_t shard,
                   std::uint64_t prev_epoch, std::uint64_t epoch,
                   DeltaSaveInfo* info = nullptr);

  /// Drains, then replaces the detector state from a snapshot written by
  /// SaveState. The detector's installed semantics are reused; the restored
  /// community is republished and becomes the alert baseline.
  Status RestoreState(const std::string& path);

  /// Drains, installs the plan's base state, and replays its delta chain
  /// through the normal ApplyEdge / Flush path — the restored detector
  /// re-makes exactly the decisions the live one made (DESIGN.md §5), so
  /// the result is bit-identical to the detector that wrote the chain.
  /// Leaves delta tracking armed for the next incremental checkpoint.
  Status RestoreChain(RestorePlan&& plan);

  /// Replays one already-validated delta segment on top of the current
  /// detector state — the warm-standby increment: a follower that restored
  /// epoch E applies the segment E -> E+1 without reloading the base.
  /// Replays through the same ApplyEdge / Flush path as RestoreChain, so
  /// the result stays bit-identical to the primary that wrote the segment.
  /// Fails with kFailedPrecondition when the queue cannot be drained
  /// within `drain_timeout` (a promoted follower must not replay into a
  /// detector with edges still in flight).
  Status ReplaySegment(const DeltaSegment& segment,
                       std::chrono::milliseconds drain_timeout);

  /// Runs `fn` on the sole partition's detector under the detector mutex
  /// (tests and diagnostics). Blocks this worker's apply path for the
  /// duration; never touches the queue.
  void InspectDetector(const std::function<void(const Spade&)>& fn) const;

  // --- per-partition persistence (the sharded service's checkpoint path;
  // fail kNotFound when this worker does not own `pid`) ---------------------

  /// SaveState for one owned partition.
  Status SavePartition(std::size_t pid, const std::string& path,
                       bool start_delta_tracking = false);

  /// SaveDelta for one owned partition (`shard` is the manifest's segment
  /// tag — the sharded service passes the pid).
  Status SavePartitionDelta(std::size_t pid, const std::string& path,
                            std::uint32_t shard, std::uint64_t prev_epoch,
                            std::uint64_t epoch,
                            DeltaSaveInfo* info = nullptr);

  /// RestoreChain for one owned partition. Safe to run concurrently with
  /// other workers' restores (each call only touches its own worker's
  /// detector mutex), which is how the sharded service parallelizes
  /// restore-side replay; two partitions on the same worker serialize.
  Status RestorePartitionChain(std::size_t pid, RestorePlan&& plan);

  /// ReplaySegment for one owned partition.
  Status ReplayPartitionSegment(std::size_t pid, const DeltaSegment& segment,
                                std::chrono::milliseconds drain_timeout);

  /// Runs `fn` on one owned partition's detector under the detector mutex.
  Status InspectPartition(std::size_t pid,
                          const std::function<void(const Spade&)>& fn) const;

 private:
  /// One handoff unit: a single inline edge (per-edge Submit pays no
  /// allocation), an owned slab of edges (SubmitBatch copies the caller's
  /// span once), or a retire marker (SubmitRetire) carrying the expiry
  /// horizon. A marker counts as one edge of queue budget so the shared
  /// claim/release/drain accounting needs no special case.
  struct Chunk {
    Chunk() = default;
    explicit Chunk(std::span<const Edge> edges) {
      if (edges.size() == 1) {
        one = edges[0];
        is_one = true;
      } else {
        many.assign(edges.begin(), edges.end());
      }
    }
    explicit Chunk(std::vector<Edge>&& edges) {
      if (edges.size() == 1) {
        one = edges[0];
        is_one = true;
      } else {
        many = std::move(edges);
      }
    }
    std::size_t size() const {
      return (is_one || is_retire) ? 1 : many.size();
    }
    Edge one{};
    bool is_one = false;
    bool is_retire = false;
    Timestamp retire_horizon = 0;
    std::vector<Edge> many;
  };

  /// One ring cell: Vyukov sequence stamp + the chunk payload. `seq == pos`
  /// means free for the producer claiming position `pos`; `seq == pos + 1`
  /// means published and ready for the consumer.
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    Chunk chunk;
  };

  void WorkerLoop();

  /// Shared enqueue path for Submit and SubmitBatch (see SubmitBatch for
  /// the partial-accept contract). `accepted` null = all-or-nothing.
  /// `owned` (optional) is the storage behind `edges`: when the whole
  /// chunk is accepted as one piece it is moved into the ring instead of
  /// copied.
  Status EnqueueImpl(std::span<const Edge> edges, std::size_t* accepted,
                     std::vector<Edge>* owned = nullptr);

  /// Shared CAS claim loop: claims up to `k` edges of budget (all-or-
  /// nothing unless `allow_partial`), updates the high-water mark, returns
  /// the claimed count (may be 0).
  std::size_t ClaimBudget(std::size_t k, bool allow_partial);
  /// Claims exactly `k` edges of queue budget; false when they do not fit.
  bool TryClaimBudget(std::size_t k);
  /// Claims up to `k` edges of budget; returns the claimed count (may be 0).
  std::size_t TryClaimUpTo(std::size_t k);
  /// Releases `k` edges of claimed budget (push failed or consumer done).
  void ReleaseBudget(std::size_t k);
  /// Vyukov multi-producer push; false when the ring is out of cells.
  bool TryPushChunk(Chunk&& chunk);
  /// Single-consumer pop (worker thread only); releases the popped edges'
  /// budget and returns false when no published cell is ready.
  bool TryPopChunk(Chunk* out);
  /// Worker thread only: is the next ring cell published? (Also evaluated
  /// inside the worker's own condvar predicate — never by other threads.)
  bool RingReady() const;
  /// Counts the chunk as accepted and wakes the worker iff it is parked.
  void PublishAccepted(std::size_t k);
  /// Wakes blocked producers iff any are registered.
  void NotifySpaceFreed();

  /// The old make-exact protocol: flush + republish for a Drain waiter,
  /// then advance the drain cursor if the ring stayed empty (and the
  /// forward backlog is empty — a backlogged edge is not yet applied
  /// anywhere).
  void MakeExact();

  /// Looks up the owned partition for an edge (detector mutex held):
  /// partition_of_ -> pid -> ownership table, or the sole partition in
  /// sole-partition mode. Null when this worker does not own the pid.
  Partition* PartitionForLocked(const Edge& edge);

  /// Finds an owned partition by pid (detector mutex held).
  Partition* FindPartitionLocked(std::size_t pid);
  const Partition* FindPartitionLocked(std::size_t pid) const;

  /// Applies one edge to its owned partition, or pushes it onto the
  /// forward backlog when the partition moved away. Fires the alert
  /// callback (outside the lock). Returns true when applied locally.
  bool ApplyOne(const Edge& edge);

  /// Worker thread only: re-applies backlog edges whose partition came
  /// home, forwards the rest to their current owners (accepted-prefix,
  /// never blocking), and counts accepted edges as consumed.
  void FlushForwardBacklog();

  /// Appends one applied-history record to a partition's delta log
  /// (detector mutex held). Drops the whole log and marks overflow at the
  /// cap.
  void AppendDeltaRecord(Partition& p, const DeltaRecord& record);

  /// Chain-replay counterpart of one retire record (detector mutex held):
  /// re-runs the deletion with the recorded applied weight and removes the
  /// matching entry from the replayed window log.
  Status ReplayRetireLocked(Partition& p, const Edge& record);

  /// Re-baselines a partition's alert filter on its current community and
  /// stores it as the partition's cached snapshot (detector mutex held).
  /// `flushed` selects Detect() (full restore: buffer is empty anyway) vs
  /// the non-flushing read (chain restore: the replayed benign buffer must
  /// survive so the restored detector keeps matching the live one).
  void RebaselineLocked(Partition& p, bool flush);

  /// Publishes the densest community across owned partitions (detector
  /// mutex held). An empty worker publishes an empty community.
  void PublishArgmaxLocked();

  /// Flushes + detects one partition, refreshes the published snapshot,
  /// queues an alert if the partition's community changed (detector mutex
  /// held; the caller fires pending alerts after unlocking).
  void DetectAndPublish(Partition& p);

  /// Moves out queued alerts (detector mutex held).
  std::vector<std::shared_ptr<const Community>> TakePendingAlertsLocked() {
    return std::move(pending_alerts_);
  }

  /// Requires sole-partition mode; returns the partition or null (legacy
  /// persistence entry points).
  Partition* SolePartitionLocked();

  /// Shared bodies for the sole-partition and per-partition persistence
  /// entry points (detector mutex held).
  Status SavePartitionLocked(Partition& p, const std::string& path,
                             bool start_delta_tracking);
  Status SaveDeltaLocked(Partition& p, const std::string& path,
                         std::uint32_t shard, std::uint64_t prev_epoch,
                         std::uint64_t epoch, DeltaSaveInfo* info);
  Status RestoreChainLocked(Partition& p, RestorePlan&& plan);
  Status ReplaySegmentLocked(Partition& p, const DeltaSegment& segment);

  DetectionServiceOptions options_;
  FraudAlertFn on_alert_;

  // --- chunk-handoff ring (lock-free producer hot path) ------------------
  std::vector<Cell> ring_;    // power-of-two cells, fixed at construction
  std::uint64_t ring_mask_ = 0;
  std::atomic<std::uint64_t> enqueue_pos_{0};
  std::uint64_t dequeue_pos_ = 0;  // worker thread only
  /// Edges resident in the ring (claimed budget). seq_cst where it pairs
  /// with the park/space Dekker handshakes.
  std::atomic<std::size_t> queued_edges_{0};
  /// High-water mark, split into a resettable recent window and a long-run
  /// fold (see TakeRecentHighWater): ClaimBudget CAS-maxes the recent one.
  std::atomic<std::size_t> queue_hwm_recent_{0};
  std::atomic<std::size_t> queue_hwm_total_{0};
  /// Edges accepted (published) by Submit/SubmitBatch — the Drain target.
  std::atomic<std::uint64_t> submitted_{0};
  /// Worker is (about to be) asleep on work_cv_; producers notify only
  /// when set (wakeup coalescing).
  std::atomic<bool> parked_{false};
  /// Producers blocked on space_cv_; the worker locks + notifies only when
  /// nonzero.
  std::atomic<std::size_t> space_waiters_{0};
  /// Lock-free mirror of stopping_ for the producer fast path.
  std::atomic<bool> stopping_flag_{false};

  // --- slow-path coordination (guarded by queue_mutex_) ------------------
  mutable std::mutex queue_mutex_;
  std::condition_variable work_cv_;   // signals the (parked) worker
  std::condition_variable drain_cv_;  // signals Drain() waiters
  std::condition_variable space_cv_;  // signals blocked producers
  bool stopping_ = false;
  bool worker_exited_ = false;
  std::size_t drain_waiters_ = 0;    // threads parked in Drain()
  std::uint64_t consumed_q_ = 0;     // mirror of consumed_ for predicates
  std::uint64_t exact_through_ = 0;  // edges reflected in an exact snapshot

  // --- partitions, touched only by the worker thread (or by Save/Restore/
  // Detach while the worker is parked in its queue wait; detector_mutex_
  // makes that exclusion explicit and TSan-visible). Never taken by
  // readers. ---------------------------------------------------------------
  mutable std::mutex detector_mutex_;
  std::vector<std::unique_ptr<Partition>> parts_;
  /// pid -> owned partition (null = not owned here). Sized
  /// total_partitions at construction.
  std::vector<Partition*> by_pid_;
  PartitionOfFn partition_of_;
  ForwardFn forward_;
  std::uint64_t consumed_ = 0;  // edges disposed of (applied or forwarded)
  // Set by DetectAndPublish when a partition's community changed; the
  // worker moves them out and fires callbacks after releasing
  // detector_mutex_.
  std::vector<std::shared_ptr<const Community>> pending_alerts_;
  /// Worker-thread-only: edges popped off the ring for partitions this
  /// worker no longer owns, awaiting forward to the current owner.
  std::vector<Edge> forward_backlog_;

  // --- published state (lock-free readers) -------------------------------
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  std::atomic<std::shared_ptr<const Community>> snapshot_;
#else
  // Fallback (pre-C++20 library or TSan build): a dedicated pointer-swap
  // mutex — still never the apply-path mutex, so readers cannot block
  // behind a reorder.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Community> snapshot_;
#endif
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> alerts_{0};
  std::atomic<std::uint64_t> detections_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> retire_begins_{0};
  /// Nanoseconds the worker spent in apply/retire/backlog work (vs parked
  /// or gathering); BusyFraction divides by wall time since start_.
  std::atomic<std::uint64_t> busy_ns_{0};
  std::chrono::steady_clock::time_point start_;
  RetireNotifyFn on_retire_;
  BoundaryUpdateFn on_boundary_;
  std::shared_ptr<SlabPool> slab_pool_;

  std::thread worker_;
};

}  // namespace spade
