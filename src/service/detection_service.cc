#include "service/detection_service.h"

#include <algorithm>

#include "common/logging.h"

namespace spade {

DetectionService::DetectionService(Spade spade, FraudAlertFn on_alert,
                                   DetectionServiceOptions options)
    : options_(options),
      on_alert_(std::move(on_alert)),
      spade_(std::move(spade)) {
  spade_.TurnOnEdgeGrouping();
  worker_ = std::thread([this] { WorkerLoop(); });
}

DetectionService::~DetectionService() { Stop(); }

Status DetectionService::Submit(const Edge& raw_edge) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return Status::FailedPrecondition("DetectionService is stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      return Status::OutOfRange("DetectionService queue full");
    }
    queue_.push_back(raw_edge);
  }
  work_cv_.notify_one();
  return Status::OK();
}

void DetectionService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty(); });
}

void DetectionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Community DetectionService::CurrentCommunity() {
  std::lock_guard<std::mutex> lock(mutex_);
  return spade_.Detect();
}

std::uint64_t DetectionService::EdgesProcessed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return processed_;
}

std::uint64_t DetectionService::AlertsDelivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alerts_;
}

void DetectionService::MaybeAlert() {
  // Caller holds mutex_.
  const Community community = spade_.Detect();
  since_detect_ = 0;
  std::vector<VertexId> sorted = community.members;
  std::sort(sorted.begin(), sorted.end());
  if (sorted == last_reported_ && community.density == last_density_) {
    return;
  }
  last_reported_ = std::move(sorted);
  last_density_ = community.density;
  ++alerts_;
  if (on_alert_) {
    // Deliver outside the lock so slow moderators don't stall producers.
    auto callback = on_alert_;
    mutex_.unlock();
    callback(community);
    mutex_.lock();
  }
}

void DetectionService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty() && stopping_) break;

    while (!queue_.empty()) {
      const Edge edge = queue_.front();
      queue_.pop_front();
      const Status s = spade_.ApplyEdge(edge);
      if (!s.ok()) {
        SPADE_LOG_WARNING() << "DetectionService dropped edge: "
                            << s.ToString();
        continue;
      }
      ++processed_;
      ++since_detect_;
      // An urgent edge flushed the benign buffer inside ApplyEdge; detect
      // right away so moderators hear about new fraudsters immediately.
      if (spade_.PendingBenignEdges() == 0 ||
          since_detect_ >= options_.detect_every) {
        MaybeAlert();
      }
    }
    drain_cv_.notify_all();
  }
  // Final flush on shutdown.
  MaybeAlert();
  drain_cv_.notify_all();
}

}  // namespace spade
