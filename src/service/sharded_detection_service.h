// ShardedDetectionService: N independent ShardWorker pipelines behind a
// pluggable partitioner — the service-layer analogue of κ-Join's
// vertex-cover decomposition (PAPERS.md): split the workload into parts
// whose updates never interact, run each part's detector on its own core,
// and combine answers at read time.
//
// Partitioner contract: a Partitioner carries two functions. `edge_key`
// maps an edge to an arbitrary std::size_t routing key (reduced modulo the
// shard count) and decides which shard applies the edge; `home` maps a
// vertex to its home-shard key. For the built-in partitioners (hash-of-src,
// tenant) routing IS home-of-source, so an edge whose endpoints share a
// home is fully visible to its shard. When the endpoints' homes differ the
// applying WORKER additionally pushes the edge (at its applied semantic
// weight) into the BoundaryEdgeIndex's per-shard-pair queues from inside
// its apply critical section — the edge still lands in exactly one shard's
// detector, but the stitcher now knows the seam exists, and an edge
// captured by a state snapshot always has its boundary record on disk
// first. A bare PartitionFn still converts implicitly; its `home` defaults
// to the key of a synthetic self-edge, which is exact for any partitioner
// that only reads `src`.
//
// Cross-shard reads: CurrentCommunity() defaults to the densest community
// over all shard snapshots (per-shard argmax). The stitch pass (StitchNow,
// or a background stitcher when StitchOptions::interval_ms > 0 runs it on
// a timer and/or StitchOptions::trigger_weight > 0 wakes it the moment a
// shard pair's accumulated unstitched weight crosses the threshold) closes
// the argmax's blind spot: it consumes the boundary queues into a
// per-vertex seam aggregate, builds a seam graph over the boundary-
// adjacent vertices plus every shard's snapshot members, gathers that
// vertex set's induced edges from the shard detectors (each edge lives in
// exactly one shard, so the union is the exact global induced subgraph),
// peels it with the static peeler, and publishes the result as an
// atomically-swapped GlobalCommunity snapshot — same non-blocking read
// protocol as the shard snapshots. Reads in stitched mode return the
// denser of the stitched snapshot and the live argmax. Consumed queue
// history is compacted to per-vertex weight blocks (resident boundary
// memory O(boundary vertices)). DESIGN.md §4.4 has the exactness,
// freshness and staleness statements.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/slab_pool.h"
#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "service/boundary_index.h"
#include "service/partition_map.h"
#include "service/shard_worker.h"
#include "storage/sharded_snapshot.h"

namespace spade {

/// Maps an edge to a routing key; the service takes it modulo num_shards.
using PartitionFn = std::function<std::size_t(const Edge&)>;

/// Maps a vertex to its home-shard key (modulo num_shards).
using VertexHomeFn = std::function<std::size_t(VertexId)>;

/// Edge routing plus vertex home assignment. `home` drives boundary-edge
/// detection and the stitch pass's shard tagging; when null it is derived
/// from `edge_key` on a synthetic self-edge (exact whenever the edge key
/// only reads the source vertex — true for every built-in partitioner).
struct Partitioner {
  Partitioner() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare edge-routing
  // function is still a complete partitioner (see `home` above).
  Partitioner(PartitionFn edge) : edge_key(std::move(edge)) {}
  Partitioner(PartitionFn edge, VertexHomeFn home_fn)
      : edge_key(std::move(edge)), home(std::move(home_fn)) {}

  PartitionFn edge_key;
  VertexHomeFn home;
  /// Promise that edge_key(e) % n == home(e.src) % n for every edge and
  /// every shard count n. When set, the batched router skips the edge_key
  /// evaluation entirely and routes by the source home it already computed
  /// for the boundary decision — one partitioner-function evaluation saved
  /// per edge. Both built-in partitioners satisfy (and set) it; leave it
  /// false for a custom edge_key unless the identity genuinely holds, or
  /// batched and per-edge routing will disagree.
  bool routes_by_src_home = false;

  explicit operator bool() const { return static_cast<bool>(edge_key); }
};

/// Alert callback with the originating shard id. Invoked from that shard's
/// worker thread; callbacks from different shards run concurrently.
using ShardAlertFn = std::function<void(std::size_t shard, const Community&)>;

/// Default partitioner: a mixed hash of the source vertex (home = the same
/// hash of the vertex, so routing equals home-of-source).
Partitioner HashOfSourcePartitioner();

/// Tenant routing for id spaces laid out as [tenant * vertices_per_tenant,
/// (tenant+1) * vertices_per_tenant): home(v) = v / vertices_per_tenant and
/// an edge routes to its source's tenant. A cross-tenant edge is applied in
/// the source tenant's shard AND recorded in the boundary index, so a
/// community spanning tenants is reachable by the stitch pass instead of
/// silently invisible.
Partitioner TenantPartitioner(VertexId vertices_per_tenant);

/// Result of a stitch pass (and the stitched read): a community whose
/// density was evaluated on the exact global induced subgraph of its
/// members, tagged with the home shards that contribute members.
struct GlobalCommunity : Community {
  /// True when the seam-graph peel produced this answer (strictly denser
  /// than every single-shard snapshot); false when the pass fell back to
  /// the per-shard argmax.
  bool stitched = false;
  /// Sorted unique home shards of the members.
  std::vector<std::size_t> shards;
  /// Monotone stitch-pass counter that produced this snapshot (0 = never).
  std::uint64_t stitch_pass = 0;
  /// Seam-graph size of the producing pass (diagnostics).
  std::size_t seam_vertices = 0;
  std::size_t seam_edges = 0;
  /// True when the producing pass dropped boundary-candidate vertices at
  /// the max_seam_vertices budget — the answer may under-report a global
  /// community that needed the dropped vertices. The background stitcher
  /// escalates to an unbounded pass when it sees this.
  bool seam_truncated = false;
};

/// Invoked after a stitch pass whose winning community came from the seam
/// peel and differs from the previous stitched detection. Runs on the
/// calling (or background stitcher) thread with no service lock held.
using StitchAlertFn = std::function<void(const GlobalCommunity&)>;

/// Stitch-pass configuration.
struct StitchOptions {
  /// Cap on the seam-graph vertex count. Shard snapshot members are always
  /// included; boundary-adjacent vertices fill the remainder in decreasing
  /// order of accumulated cross-shard edge weight.
  std::size_t max_seam_vertices = 4096;
  /// Drain every shard before gathering, so the seam graph reflects every
  /// edge submitted before the pass (the exactness the differential suite
  /// pins). Turning it off trades a bounded-staleness seam for not waiting
  /// on the queues.
  bool drain_before_stitch = true;
  /// When > 0, a background thread runs a stitch pass at this period.
  std::uint32_t interval_ms = 0;
  /// Event-driven stitching: when > 0, every applied (or retired)
  /// cross-shard edge adds its absolute applied weight to a per-shard-pair
  /// accumulator, and the pair crossing this threshold wakes the
  /// background stitcher immediately — freshness becomes "bounded edges
  /// behind the threshold crossing" instead of "interval_ms behind".
  /// Works alone (interval_ms == 0: the stitcher only wakes on triggers)
  /// or combined (triggers cut the wait short). Accumulators reset at
  /// every pass. 0 = timer-only stitching.
  double trigger_weight = 0.0;
  /// Collapse fold-consumed boundary-index history into per-vertex weight
  /// blocks at each stitch pass (BoundaryEdgeIndex::CompactConsumed),
  /// keeping resident boundary memory O(boundary vertices). On by
  /// default; the bench A/Bs it off to measure the saving.
  bool compact_boundary = true;
  /// Per-pair trigger threshold override: the unordered partition pair
  /// {a, b} wakes the stitcher at `weight` instead of the fleet-wide
  /// trigger_weight. A hot pair (e.g. one the rebalancer keeps moving)
  /// can stitch more eagerly than the fleet default without lowering the
  /// threshold everywhere. `weight` <= 0 disables triggering for the pair.
  struct PairTriggerOverride {
    std::size_t a = 0;
    std::size_t b = 0;
    double weight = 0.0;
  };
  /// Overrides applied on top of trigger_weight (later entries win on
  /// duplicate pairs). Any override > 0 arms the event-driven stitcher
  /// even when trigger_weight == 0.
  std::vector<PairTriggerOverride> pair_trigger_overrides;
  /// Stitched-detection alerts (see StitchAlertFn).
  StitchAlertFn on_stitch_alert;
};

/// Work-stealing rebalance policy (DESIGN.md §10). Off by default: with
/// `enabled` false and `partitions_per_shard` 1 the service behaves (and
/// persists) exactly as a fixed-placement fleet.
struct RebalanceOptions {
  /// Detector partitions per worker. The constructor's `shards` vector has
  /// one detector per PARTITION; the worker count is
  /// shards.size() / partitions_per_shard (must divide evenly). More
  /// partitions per shard = finer-grained steals, at the cost of one
  /// routing-table entry and one detector per partition.
  std::size_t partitions_per_shard = 1;
  /// Master switch for partition moves (the rebalancer thread AND manual
  /// RebalanceNow). When false partitions never move, so no edge is ever
  /// forwarded.
  bool enabled = false;
  /// Rebalancer scan period; 0 = no background rebalancer (manual
  /// RebalanceNow only).
  std::uint32_t interval_ms = 0;
  /// Steal when the loaded worker's recent queue high-water exceeds
  /// skew_ratio x the idlest worker's.
  double skew_ratio = 4.0;
  /// ... and that high-water is at least this deep (don't shuffle
  /// partitions over noise).
  std::size_t min_queue_depth = 512;
  /// ... and moving the chosen partition shrinks the victim-vs-thief load
  /// gap by at least this fraction (hysteresis against ping-ponging a
  /// partition between two workers).
  double min_improvement = 0.15;
  /// Minimum wait between moves.
  std::uint32_t cooldown_ms = 200;
  /// Best-effort drain of the victim before detaching (bounds how many
  /// in-flight edges the move turns into forwards; the protocol is correct
  /// at 0, just chattier).
  std::uint32_t quiesce_timeout_ms = 5;
};

/// Sliding-window expiry policy. With `span > 0` every shard keeps a
/// window log (applied weight + event timestamp per edge), the router
/// tracks a high-water event-time watermark over submitted edges, and
/// whenever the watermark advances a stride past the last expiry horizon
/// the service enqueues a retire marker on every shard: edges older than
/// `watermark - span` are deleted from the detectors with their recorded
/// applied weights, through the same ring and drain protocol as inserts.
/// Boundary-index eviction to the same horizon happens at the start of
/// each stitch pass (and in explicit RetireOlderThan calls), so resident
/// state is O(window), not O(history), as long as stitching or explicit
/// retires run periodically. `span == 0` (default) disables everything:
/// the service is insert-only and pays nothing.
struct WindowOptions {
  /// Window span in event-time units (same clock as Edge::ts); 0 = off.
  Timestamp span = 0;
  /// Minimum watermark advance between automatic retire passes. 0 picks
  /// span / 8 — ~8 passes per window of traffic, amortizing the marker +
  /// deletion cost while keeping resident overshoot under ~12% of span.
  Timestamp stride = 0;
};

/// When an auto-mode SaveState folds the delta chain back into a fresh
/// base instead of appending another segment. Either trigger alone forces
/// compaction; both bound the restore-time replay work (chain length) and
/// the directory's byte overhead relative to one full snapshot.
struct CheckpointPolicy {
  /// Compact when the chain already holds this many delta epochs.
  std::size_t max_chain_length = 16;
  /// Compact when accumulated delta bytes exceed this fraction of the
  /// base-snapshot bytes.
  double max_delta_base_ratio = 0.5;
};

struct ShardedDetectionServiceOptions {
  /// Knobs applied to every shard worker.
  DetectionServiceOptions shard;
  /// Edge routing + vertex homes; null selects HashOfSourcePartitioner().
  Partitioner partitioner;
  /// Cross-shard stitching knobs.
  StitchOptions stitch;
  /// Delta-chain compaction triggers for auto-mode SaveState.
  CheckpointPolicy checkpoint;
  /// Sliding-window expiry (span == 0 = insert-only service, no window
  /// log, no watermark tracking).
  WindowOptions window;
  /// CPU pinning for the shard workers: shard i pins to
  /// shard_cpus[i % shard_cpus.size()] (empty = every worker inherits
  /// shard.cpu, default unpinned). Linux-only; nonexistent CPUs degrade to
  /// a logged warning, never an error — see DetectionServiceOptions::cpu.
  std::vector<int> shard_cpus;
  /// Threads used by RestoreState's chain replay: 0 = one per shard (the
  /// default — each shard's chain replays only into its own detector, so
  /// the replays are independent and bit-identical to a serial restore),
  /// 1 = serial, n = capped worker pool.
  std::size_t restore_threads = 0;
  /// Work-stealing rebalance (partition granularity, steal policy).
  RebalanceOptions rebalance;
};

/// Merged + per-shard service counters. All reads are lock-free (queue
/// depths come from a relaxed mirror, not the queue mutex).
struct ShardedServiceStats {
  std::uint64_t edges_processed = 0;
  std::uint64_t alerts_delivered = 0;
  std::uint64_t boundary_edges = 0;
  std::uint64_t stitch_passes = 0;
  std::uint64_t stitched_alerts = 0;
  /// Stitch passes that dropped seam candidates at the max_seam_vertices
  /// budget (each also logs once). A growing value means the budget is
  /// binding and stitched answers may under-report; raise the budget or
  /// rely on the stitcher's escalation pass.
  std::uint64_t seam_truncated = 0;
  /// Event-driven stitcher wakeups (trigger_weight crossings observed).
  std::uint64_t stitch_triggers = 0;
  /// Stitched-read freshness in edges: boundary edges recorded since the
  /// last stitch fold consumed the queues (0 = seam aggregate fully
  /// caught up).
  std::uint64_t boundary_unconsumed_edges = 0;
  /// Boundary-index edges currently residing in compacted per-vertex
  /// blocks rather than raw form.
  std::uint64_t boundary_compacted_edges = 0;
  /// Approximate resident payload bytes of the boundary index.
  std::size_t boundary_resident_bytes = 0;
  /// Edges removed by window expiry across all shards (0 when window off).
  std::uint64_t retired_edges = 0;
  /// Detector partitions in the fleet (== num_shards unless
  /// partitions_per_shard > 1).
  std::size_t num_partitions = 0;
  /// Partition moves initiated by the background rebalancer's steal policy.
  std::uint64_t steals = 0;
  /// All partition moves (steals + manual RebalanceNow calls).
  std::uint64_t partitions_moved = 0;
  /// Edges that arrived at a stale owner after a move and were re-submitted
  /// to the current owner (each counted once per successful forward hop).
  std::uint64_t forwarded_edges = 0;
  std::vector<std::uint64_t> shard_edges;
  std::vector<std::uint64_t> shard_alerts;
  std::vector<std::uint64_t> shard_retired;
  std::vector<std::uint64_t> shard_detections;
  std::vector<std::size_t> shard_queue_depth;
  /// Highest queue depth each shard reached since the last
  /// ResetQueueHighWater() (or ever): the handoff-pressure gauge — a
  /// high-water mark near max_queue means producers outran that shard.
  std::vector<std::size_t> shard_queue_hwm;
  /// Fraction of wall time each worker spent applying edges (vs parked):
  /// the skew gauge the steal policy acts on.
  std::vector<double> shard_busy_fraction;
  /// Partitions each worker currently owns.
  std::vector<std::size_t> shard_partitions;
};

/// Partition-parallel streaming front-end over N Spade detectors.
class ShardedDetectionService {
 public:
  /// How CurrentCommunity() combines the shard views.
  enum class GlobalReadMode {
    /// Densest single-shard snapshot (never sees cross-shard communities).
    kArgmax,
    /// Denser of the latest stitched snapshot and the live argmax.
    kStitched,
  };

  /// Takes ownership of one fully built detector per PARTITION (all built
  /// with the same semantics; each should hold its partition's initial
  /// graph). With the default RebalanceOptions a partition is a shard and
  /// this is one detector per shard; with partitions_per_shard = k the
  /// fleet runs shards.size() / k workers and partition pid starts on
  /// worker pid % num_shards. Workers start immediately.
  ShardedDetectionService(std::vector<Spade> shards, ShardAlertFn on_alert,
                          ShardedDetectionServiceOptions options = {});

  /// Stops all shards.
  ~ShardedDetectionService();

  ShardedDetectionService(const ShardedDetectionService&) = delete;
  ShardedDetectionService& operator=(const ShardedDetectionService&) = delete;

  std::size_t num_shards() const { return workers_.size(); }

  /// Detector partitions in the fleet (>= num_shards; the routing
  /// granularity and the unit of rebalance).
  std::size_t num_partitions() const { return map_.num_partitions(); }

  /// Worker currently owning partition `pid` (lock-free; advisory under a
  /// concurrent move).
  std::size_t PartitionShard(std::size_t pid) const {
    return map_.ShardOf(pid);
  }

  /// Routes the edge to its shard and enqueues it; callable from any
  /// thread. Per-shard FIFO order is preserved per producer thread. An
  /// edge whose endpoint homes differ is recorded in the boundary index by
  /// the OWNING WORKER as it applies the edge (at the applied semantic
  /// weight, inside the detector critical section, strictly before the
  /// post-apply snapshot publish) — so a SaveState snapshot can never
  /// contain an unrecorded seam edge, and a rejected edge is never
  /// recorded at all.
  Status Submit(const Edge& raw_edge);

  /// Bulk submit, the multi-producer throughput path: a thread-local
  /// RouterScratch partitions the chunk with one routing pass (flat
  /// reusable arenas, no per-call vector-of-vectors) and each shard
  /// receives its contiguous part through the lock-free chunk handoff.
  /// Boundary recording happens worker-side, exactly as in Submit. Order
  /// within the chunk is preserved per shard. Best-effort across shards:
  /// every shard's part is attempted and the first failure is returned.
  /// With `enqueued` non-null, `*enqueued` is the exact number of edges
  /// accepted — including prefixes a shard partially accepted under
  /// backpressure (see ShardWorker::SubmitBatch); with it null, each
  /// shard's part is all-or-nothing.
  Status SubmitBatch(std::span<const Edge> raw_edges,
                     std::size_t* enqueued = nullptr);

  /// The shard `raw_edge` would be routed to.
  std::size_t ShardOf(const Edge& raw_edge) const;

  /// The home shard of a vertex (drives boundary-edge detection).
  std::size_t HomeShardOf(VertexId v) const;

  /// Registers pre-existing cross-home edges (e.g. the initial graphs the
  /// shard detectors were built with, which never passed through Submit) in
  /// the boundary index so the stitch pass can discover their seams.
  /// Same-home edges are ignored.
  void SeedBoundaryIndex(std::span<const Edge> raw_edges);

  /// Blocks until every shard has applied and republished everything
  /// submitted before this call.
  void Drain();

  /// Bounded-wait Drain: true when every shard became exact within
  /// `timeout` (one shared deadline, not per shard), false when the
  /// deadline passed with at least one shard still behind. Replication
  /// seals and follower promotion use this so a wedged shard degrades to a
  /// reported failure instead of hanging the control plane.
  bool DrainFor(std::chrono::milliseconds timeout);

  /// Drains and stops all shard workers (and the background stitcher).
  /// Idempotent.
  void Stop();

  /// Global community read. kArgmax: densest community over all shard
  /// snapshots (ties break toward the lower shard id; never blocks on any
  /// apply path). kStitched: the denser of the latest stitched snapshot and
  /// the live argmax — still lock-free, but only as fresh as the last
  /// stitch pass. While no retire pass has touched a contributing shard, a
  /// stitched snapshot's density is a valid lower bound of its member set's
  /// current density (inserts only grow a fixed set's induced density).
  /// Window expiry breaks that bound — deletions can make a stale stitched
  /// density OVERSTATE the live one — so every retire pass that removes
  /// edges from a contributing shard drops the published stitched snapshot,
  /// and stitched reads fall back to the live argmax until the next pass.
  Community CurrentCommunity(
      GlobalReadMode mode = GlobalReadMode::kArgmax) const;

  /// Stitched read with provenance: the denser of the latest stitched
  /// snapshot and the live argmax, tagged with contributing shards.
  GlobalCommunity CurrentGlobalCommunity() const;

  /// Runs a stitch pass now: (drain,) fold the boundary index, gather the
  /// seam graph from the shard detectors, peel it, publish and return the
  /// winner. Concurrent calls serialize. See class comment.
  GlobalCommunity StitchNow();

  /// Shard id whose snapshot wins the density argmax. Advisory under
  /// concurrent updates: the shard may republish between this call and a
  /// subsequent read (CurrentCommunity() does its argmax and read in one
  /// pass and is not subject to that race).
  std::size_t TopShard() const;

  /// Latest published snapshot of one shard (never blocks).
  std::shared_ptr<const Community> ShardSnapshot(std::size_t shard) const;
  Community ShardCommunity(std::size_t shard) const;

  /// Runs `fn` on one shard's detector under its detector mutex (tests and
  /// diagnostics: peel-state differentials, graph audits). Blocks that
  /// shard's apply path for the duration. With partitions_per_shard > 1 the
  /// shard's FIRST owned partition is inspected; use InspectPartition for a
  /// specific one.
  void InspectShard(std::size_t shard,
                    const std::function<void(const Spade&)>& fn) const;

  /// Runs `fn` on one partition's detector, wherever it currently lives
  /// (takes the rebalance lock so the partition cannot move mid-inspect).
  Status InspectPartition(std::size_t pid,
                          const std::function<void(const Spade&)>& fn) const;

  /// Moves partition `pid` to worker `to_shard` at a drain boundary: the
  /// current owner is (best-effort) quiesced, the partition detaches,
  /// attaches to the target, and the routing entry republishes with a
  /// bumped epoch. Edges routed under the old entry are forwarded by the
  /// old owner — none lost, none double-applied. Fails with
  /// kFailedPrecondition unless RebalanceOptions::enabled; concurrent moves
  /// serialize. A no-op (OK) when `pid` already lives on `to_shard`.
  Status RebalanceNow(std::size_t pid, std::size_t to_shard);

  /// The workers' cross-shard edge record (tests and diagnostics).
  const BoundaryEdgeIndex& boundary_index() const { return boundary_; }

  /// Explicit window expiry: enqueues a retire marker on every shard
  /// (edges with ts < `horizon` are deleted with their recorded applied
  /// weights — same ring and drain protocol as inserts, so Drain() after
  /// this call implies the expiry has fully applied) and evicts the
  /// boundary index's expired prefix immediately. Requires
  /// WindowOptions::span > 0. The first shard enqueue error is returned;
  /// shards that accepted the marker still retire.
  Status RetireOlderThan(Timestamp horizon);

  /// High-water event timestamp over all submitted edges (relaxed; 0 until
  /// the first submit). Only tracked when the window is on.
  Timestamp Watermark() const {
    return watermark_.load(std::memory_order_relaxed);
  }

  /// Edges removed by window expiry across all shards.
  std::uint64_t EdgesRetired() const;

  /// Copy of one shard's window log (tests and diagnostics; takes that
  /// shard's detector mutex).
  std::vector<Edge> ShardWindow(std::size_t shard) const;

  /// Merged counters plus per-shard breakdown.
  ShardedServiceStats GetStats() const;
  std::uint64_t EdgesProcessed() const;
  std::uint64_t AlertsDelivered() const;

  /// Deepest current queue across the shards (relaxed reads). Adaptive
  /// producers use it to size their next chunk.
  std::size_t MaxQueueDepth() const;

  /// Zeroes every shard's queue high-water mark. Phase-structured
  /// measurements (admission vs drain) reset between phases so the second
  /// phase's peak is not masked by the first's.
  void ResetQueueHighWater();

  /// Checkpoint flavor for SaveState.
  enum class SaveMode {
    /// Delta when a chain is active in `dir` and the CheckpointPolicy
    /// allows it; full (base rewrite) otherwise.
    kAuto,
    /// Always rewrite the base snapshots (and start a fresh chain).
    kFull,
    /// Always append a delta epoch; fails with kFailedPrecondition when no
    /// chain is active in `dir` (bench/tests that must isolate delta cost).
    kDelta,
  };

  /// What one SaveState actually did.
  struct SaveInfo {
    bool delta = false;        // wrote only delta segments
    bool compacted = false;    // auto mode folded the chain into a new base
    std::uint64_t epoch = 0;   // checkpoint epoch this save produced
    std::uint64_t bytes_written = 0;  // all files incl. manifest
    std::size_t chain_length = 0;     // delta epochs now in the manifest
    std::size_t delta_edges = 0;      // edge records across all segments
  };

  /// What one RestoreState actually recovered.
  struct RestoreInfo {
    std::uint64_t manifest_epoch = 0;  // epoch the manifest claims
    std::uint64_t restored_epoch = 0;  // epoch actually reconstructed
    std::size_t delta_edges_replayed = 0;
    /// True when a torn/corrupt chain tail forced recovery to an earlier
    /// durable epoch (restored_epoch < manifest_epoch).
    bool truncated_chain = false;
    /// Wall-clock duration of the whole restore (validation + parallel
    /// chain replay; see ShardedDetectionServiceOptions::restore_threads).
    double restore_millis = 0.0;
  };

  /// Checkpoints all shards into `dir` (created if needed). The first save
  /// into a directory writes full base snapshots; subsequent saves into
  /// the same directory append one delta epoch — per-shard segments
  /// holding only the edges applied since the previous checkpoint, an
  /// incremental boundary-index tail, and a rewritten (tiny) manifest —
  /// so checkpoint cost tracks traffic, not graph size. The
  /// CheckpointPolicy folds the chain back into a fresh base when it grows
  /// past its bounds. Drains each shard first. Crash-safe at every point:
  /// the manifest is written last and atomically, and every bulk file
  /// carries a CRC trailer, so a torn save either leaves the previous
  /// manifest in charge or is detected at restore.
  Status SaveState(const std::string& dir, SaveMode mode = SaveMode::kAuto,
                   SaveInfo* info = nullptr);

  /// Restores a directory written by SaveState. The manifest's shard count
  /// must match this service's — validated (like everything else) before
  /// any side effect: the whole chain is parsed and CRC-checked first, and
  /// only then installed, so a failed restore never leaves a partial
  /// graph. A torn chain tail (crash during the last delta save) recovers
  /// to the last epoch whose files are all intact; a torn base or manifest
  /// fails cleanly. Delta chains replay through the normal ApplyEdge path,
  /// so restored detectors are bit-identical to the ones that wrote the
  /// chain. Delta chains replay in parallel, one thread per shard by
  /// default (each chain replays only into its own detector, so the result
  /// is bit-identical to a serial restore; `restore_threads` caps or
  /// serializes the pool). Detectors keep their installed semantics. The
  /// boundary index
  /// is restored too (snapshots from before the index existed restore it
  /// empty), and the stitched snapshot *and* the stitch/boundary counters
  /// are reset — stats() afterwards describes the restored run, not the
  /// one that wrote the snapshot.
  Status RestoreState(const std::string& dir, RestoreInfo* info = nullptr);

  /// Warm-standby increment: applies exactly checkpoint epoch
  /// `target_epoch` from `dir` on top of the service's current state —
  /// the follower that already restored (or replayed up to) epoch E calls
  /// this with E+1 as each replicated epoch commits, instead of re-running
  /// a full RestoreState over the whole chain. Two-phase like
  /// RestoreState: every segment and the boundary tail are parsed,
  /// CRC-checked and chain-validated (shard index, prev_epoch contiguity
  /// against `target_epoch - 1`) before any detector is touched, so a
  /// corrupt replicated epoch fails cleanly with the fleet intact.
  /// Replays through ShardWorker::ReplaySegment (bit-identity preserved).
  /// Requires a quiesced service (the follower takes no writes); a shard
  /// that cannot drain within `drain_timeout` fails the call. Invalidates
  /// the cached save chain: the next SaveState into any directory writes
  /// a full base. `edges_replayed` (optional) reports the replayed edge
  /// records — the tail-chain replay cost bench_replication measures.
  Status ApplyChainEpoch(const std::string& dir, std::uint64_t target_epoch,
                         std::chrono::milliseconds drain_timeout,
                         std::uint64_t* edges_replayed = nullptr);

 private:
  /// Single-pass density argmax over the shard snapshots: (shard, snapshot).
  std::pair<std::size_t, std::shared_ptr<const Community>> ArgmaxSnapshot()
      const;

  void MaybeRecordBoundary(const Edge& raw_edge);
  std::shared_ptr<const GlobalCommunity> LoadStitched() const;
  void StoreStitched(std::shared_ptr<const GlobalCommunity> snap);
  void StitcherLoop();

  /// The stitch pass body (StitchNow with the default budget; the
  /// stitcher's escalation retry with an unbounded seam).
  GlobalCommunity StitchPass(bool unbounded_seam);

  /// Worker-side boundary hook body (BoundaryUpdateFn): records applied
  /// cross-home edges into the index at their applied weight and feeds the
  /// trigger accumulators. Keyed by partition home (pid), NOT by current
  /// owner shard, so boundary records survive partition moves.
  /// `num_partitions` is captured, not read from members — workers start
  /// (and may call this) while the constructor is still building later
  /// shards.
  void OnBoundaryUpdate(std::size_t num_partitions, const Edge& edge,
                        double applied, bool retired);

  /// The stable partition id of an edge (edge_key or source home, modulo
  /// num_partitions).
  std::size_t PartitionOf(const Edge& raw_edge) const;

  /// ForwardFn body for worker `from`: re-submits edges whose partitions
  /// moved away to their current owners via the never-blocking OfferBatch.
  /// Returns the accepted prefix length; stops early at the first edge
  /// whose partition came back home (`from` re-applies it locally).
  std::size_t RouteForward(std::size_t from, std::span<const Edge> edges);

  /// Shared body of RebalanceNow and the rebalancer's steals (takes
  /// rebalance_mutex_). `stolen` tags the steals counter.
  Status MovePartition(std::size_t pid, std::size_t to_shard, bool stolen);

  /// Background steal loop (started when rebalance.enabled and
  /// rebalance.interval_ms > 0).
  void RebalancerLoop();

  /// Sum of every worker's accepted-edge counter; stable across two reads
  /// with no concurrent producers, which is what Drain's fixpoint loop
  /// needs (a forwarded edge re-enters a queue AFTER the victim's Drain
  /// returned, so one pass over the workers is not enough).
  std::uint64_t TotalSubmitted() const;

  /// Window-mode submit hook: CAS-max the watermark over `ts` and, when it
  /// has advanced a full stride past the last automatic horizon, enqueue a
  /// retire pass on every shard. No-op when the window is off.
  void ObserveTimestamp(Timestamp ts);
  /// Highest event timestamp in `raw_edges` (one scan per batch chunk).
  void ObserveBatchTimestamps(std::span<const Edge> raw_edges);
  /// Fired from a shard worker's retire pass: drop the published stitched
  /// snapshot when the shrinking shard contributed to it (a stale stitched
  /// density can overstate under expiry — see CurrentCommunity).
  void OnShardRetire(std::size_t shard);

  /// Full checkpoint: base snapshots + boundary index + chainless
  /// manifest at `epoch`. Caller holds save_mutex_.
  Status SaveFull(const std::string& dir, std::uint64_t epoch,
                  SaveInfo* info);
  /// Incremental checkpoint appending epoch `chain_.epoch + 1`. Caller
  /// holds save_mutex_.
  Status SaveDeltaEpoch(const std::string& dir, SaveInfo* info);
  /// Deletes delta/tail files in `dir` that the just-written manifest no
  /// longer references (best effort; orphans are harmless but untidy).
  void RemoveStaleChainFiles(const std::string& dir) const;

  ShardedDetectionServiceOptions options_;
  ShardAlertFn on_alert_;  // outlives the workers (declared first)
  std::string semantics_;
  /// Partition -> current owner shard (lock-free reads on every Submit;
  /// declared before workers_ so forward closures can capture it safely).
  PartitionMap map_;
  /// Recycles consumed batch slabs back to the batched router.
  std::shared_ptr<SlabPool> slab_pool_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  BoundaryEdgeIndex boundary_;

  // --- rebalance state ---------------------------------------------------
  /// Serializes partition moves (and excludes them from checkpoints and
  /// stitch gathers: Save*/StitchPass hold it so placement is frozen while
  /// they read multiple workers). Ordered AFTER save_mutex_ and
  /// stitch_mutex_: those paths acquire it, never the reverse.
  mutable std::mutex rebalance_mutex_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> partitions_moved_{0};
  std::atomic<std::uint64_t> forwarded_edges_{0};
  std::mutex rebalancer_mutex_;
  std::condition_variable rebalancer_cv_;
  bool rebalancer_stop_ = false;
  std::thread rebalancer_;

  // --- checkpoint chain state (guarded by save_mutex_; Save/Restore
  // serialize against each other, never against producers or readers) ----
  mutable std::mutex save_mutex_;
  /// Directory of the active delta chain ("" = none; next save is full).
  std::string chain_dir_;
  /// Cached manifest of `chain_dir_` (what a restore would read).
  ShardManifest chain_;
  /// Byte accounting driving CheckpointPolicy::max_delta_base_ratio.
  std::uint64_t chain_base_bytes_ = 0;
  std::uint64_t chain_delta_bytes_ = 0;
  /// Position in the boundary index already covered by the chain's base +
  /// tails; SaveTail persists only edges recorded past it.
  BoundaryEdgeIndex::Cursor boundary_persist_cursor_;

  // --- window expiry state (lock-free; submit hot path touches only the
  // watermark CAS-max when the window is on) ------------------------------
  /// High-water event timestamp over all submitted edges.
  std::atomic<Timestamp> watermark_{0};
  /// Horizon of the last automatically triggered retire pass; the next
  /// trigger fires when watermark - span >= last_horizon_ + stride.
  std::atomic<Timestamp> last_horizon_{0};
  /// Highest horizon any retire pass (automatic or explicit) has been
  /// asked to expire; the next stitch pass evicts the boundary index to it
  /// (boundary eviction never runs on the submit hot path).
  std::atomic<Timestamp> pending_evict_horizon_{0};

  // --- stitch state (all guarded by stitch_mutex_; passes serialize) -----
  mutable std::mutex stitch_mutex_;
  BoundaryEdgeIndex::Cursor stitch_cursor_;
  std::unordered_map<VertexId, double> boundary_weight_;
  std::vector<VertexId> last_stitched_members_;  // sorted
  double last_stitched_density_ = -1.0;

  // --- published stitched snapshot (lock-free readers; same TSan-aware
  // protocol as ShardWorker's shard snapshot) ----------------------------
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  std::atomic<std::shared_ptr<const GlobalCommunity>> stitched_;
#else
  mutable std::mutex stitched_mutex_;
  std::shared_ptr<const GlobalCommunity> stitched_;
#endif
  std::atomic<std::uint64_t> stitch_passes_{0};
  std::atomic<std::uint64_t> stitched_alerts_{0};
  std::atomic<std::uint64_t> seam_truncated_{0};
  std::atomic<std::uint64_t> stitch_triggers_{0};
  /// RecordedEdges() snapshot taken right after each stitch fold; the
  /// difference against the live counter is the stitched read's freshness
  /// in edges (GetStats, lock-free).
  std::atomic<std::uint64_t> folded_recorded_{0};

  // --- trigger accumulators (written from worker apply paths; one atomic
  // double per ordered PARTITION pair, CAS-add — allocated only when the
  // trigger is armed: fleet-wide trigger_weight > 0 or any per-pair
  // override > 0, and the fleet has > 1 partition) ------------------------
  std::unique_ptr<std::atomic<double>[]> pair_weight_;
  /// Per-ordered-pair wake threshold: trigger_weight with
  /// pair_trigger_overrides applied symmetrically (<= 0 = pair never
  /// triggers). Immutable after construction; same allocation condition as
  /// pair_weight_.
  std::unique_ptr<double[]> pair_threshold_;

  // --- background stitcher (started when stitch.interval_ms > 0 or the
  // trigger is armed) -----------------------------------------------------
  std::mutex stitcher_mutex_;
  std::condition_variable stitcher_cv_;
  bool stitcher_stop_ = false;
  /// A trigger crossed the threshold since the last pass started
  /// (guarded by stitcher_mutex_, like stitcher_stop_).
  bool trigger_pending_ = false;
  std::thread stitcher_;
};

}  // namespace spade
