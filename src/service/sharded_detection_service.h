// ShardedDetectionService: N independent ShardWorker pipelines behind a
// pluggable partitioner — the service-layer analogue of κ-Join's
// vertex-cover decomposition (PAPERS.md): split the workload into parts
// whose updates never interact, run each part's detector on its own core,
// and combine answers at read time.
//
// Partitioner contract: the function maps an edge to an arbitrary
// std::size_t key; the service reduces it modulo the shard count. Every
// edge of one logical partition (tenant, region, product line) MUST map to
// the same key — the shards are fully independent detectors, so an edge
// routed to shard A is invisible to shard B. Correctness therefore requires
// the partition to be closed under the communities one cares about: with
// tenant-keyed routing, each tenant's community is exactly what a dedicated
// single-tenant detector would report (the sharded differential test pins
// this). A hash-of-source default is provided for workloads without a
// natural key; it keeps per-source neighborhoods together but splits
// cross-source communities, so treat its global answer as a per-shard
// argmax, not a whole-graph detection.
//
// Cross-shard reads: CurrentCommunity() returns the densest community over
// all shard snapshots. It does NOT stitch communities that span shards —
// density of a cross-shard vertex set is not comparable without the edges
// between parts, which no shard holds (ROADMAP: cross-shard stitching).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/spade.h"
#include "graph/types.h"
#include "service/shard_worker.h"

namespace spade {

/// Maps an edge to a routing key; the service takes it modulo num_shards.
using PartitionFn = std::function<std::size_t(const Edge&)>;

/// Alert callback with the originating shard id. Invoked from that shard's
/// worker thread; callbacks from different shards run concurrently.
using ShardAlertFn = std::function<void(std::size_t shard, const Community&)>;

/// Default partitioner: a mixed hash of the source vertex.
PartitionFn HashOfSourcePartitioner();

/// Tenant routing for id spaces laid out as [tenant * vertices_per_tenant,
/// (tenant+1) * vertices_per_tenant): key = src / vertices_per_tenant.
PartitionFn TenantPartitioner(VertexId vertices_per_tenant);

struct ShardedDetectionServiceOptions {
  /// Knobs applied to every shard worker.
  DetectionServiceOptions shard;
  /// Edge routing; null selects HashOfSourcePartitioner().
  PartitionFn partitioner;
};

/// Merged + per-shard service counters. All reads are lock-free (queue
/// depths come from a relaxed mirror, not the queue mutex).
struct ShardedServiceStats {
  std::uint64_t edges_processed = 0;
  std::uint64_t alerts_delivered = 0;
  std::vector<std::uint64_t> shard_edges;
  std::vector<std::uint64_t> shard_alerts;
  std::vector<std::uint64_t> shard_detections;
  std::vector<std::size_t> shard_queue_depth;
};

/// Partition-parallel streaming front-end over N Spade detectors.
class ShardedDetectionService {
 public:
  /// Takes ownership of one fully built detector per shard (all built with
  /// the same semantics; each should hold its partition's initial graph).
  /// Workers start immediately.
  ShardedDetectionService(std::vector<Spade> shards, ShardAlertFn on_alert,
                          ShardedDetectionServiceOptions options = {});

  /// Stops all shards.
  ~ShardedDetectionService();

  ShardedDetectionService(const ShardedDetectionService&) = delete;
  ShardedDetectionService& operator=(const ShardedDetectionService&) = delete;

  std::size_t num_shards() const { return workers_.size(); }

  /// Routes the edge to its shard and enqueues it; callable from any
  /// thread. Per-shard FIFO order is preserved per producer thread.
  Status Submit(const Edge& raw_edge);

  /// Bulk submit: partitions the chunk once and hands each shard its part
  /// under a single lock acquisition + wakeup (the multi-producer
  /// throughput path). Order within the chunk is preserved per shard.
  /// Best-effort across shards: every shard's part is attempted, the first
  /// failure is returned, and `*enqueued` (when non-null) receives the
  /// number of edges actually accepted, so callers can reconcile partial
  /// chunks.
  Status SubmitBatch(std::span<const Edge> raw_edges,
                     std::size_t* enqueued = nullptr);

  /// The shard `raw_edge` would be routed to.
  std::size_t ShardOf(const Edge& raw_edge) const;

  /// Blocks until every shard has applied and republished everything
  /// submitted before this call.
  void Drain();

  /// Drains and stops all shard workers. Idempotent.
  void Stop();

  /// Densest community over all shard snapshots (argmax density; ties break
  /// toward the lower shard id). Never blocks on any apply path.
  Community CurrentCommunity() const;

  /// Shard id whose snapshot wins the density argmax. Advisory under
  /// concurrent updates: the shard may republish between this call and a
  /// subsequent read (CurrentCommunity() does its argmax and read in one
  /// pass and is not subject to that race).
  std::size_t TopShard() const;

  /// Latest published snapshot of one shard (never blocks).
  std::shared_ptr<const Community> ShardSnapshot(std::size_t shard) const;
  Community ShardCommunity(std::size_t shard) const;

  /// Merged counters plus per-shard breakdown.
  ShardedServiceStats GetStats() const;
  std::uint64_t EdgesProcessed() const;
  std::uint64_t AlertsDelivered() const;

  /// Persists all shards into `dir` (created if needed): a manifest plus
  /// one snapshot file per shard. Drains each shard first.
  Status SaveState(const std::string& dir);

  /// Restores a directory written by SaveState. The manifest's shard count
  /// must match this service's; detectors keep their installed semantics.
  Status RestoreState(const std::string& dir);

 private:
  /// Single-pass density argmax over the shard snapshots: (shard, snapshot).
  std::pair<std::size_t, std::shared_ptr<const Community>> ArgmaxSnapshot()
      const;

  ShardedDetectionServiceOptions options_;
  ShardAlertFn on_alert_;  // outlives the workers (declared first)
  std::string semantics_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
};

}  // namespace spade
