// Workload assembly: combines a dataset profile, the 90/10 replay split and
// fraud injection into the ready-to-run benchmark inputs used by every
// table/figure harness.

#pragma once

#include <cstdint>
#include <vector>

#include "datagen/fraud_injector.h"
#include "datagen/generators.h"
#include "datagen/profiles.h"
#include "stream/labeled_stream.h"

namespace spade {

/// A complete benchmark workload.
struct Workload {
  DatasetProfile profile;
  std::size_t num_vertices = 0;
  VertexId merchant_base = 0;
  std::vector<Edge> initial;   // the 90% initialization graph
  LabeledStream stream;        // the 10% increment, fraud-labeled
};

/// Fraud mixing parameters.
struct FraudMix {
  /// Number of injected instances per pattern.
  std::size_t instances_per_pattern = 1;
  /// Transactions per instance (the case studies use 720 / 71 / 1853).
  std::size_t transactions_per_instance = 300;
  /// Fraud burst pacing relative to normal traffic.
  Timestamp micros_per_fraud_edge = 500;
};

/// Builds a workload for `profile_name` at the given scale. When `fraud`
/// is non-null, fraud instances are injected throughout the increment
/// stream's time range.
Workload BuildWorkload(const std::string& profile_name, double scale,
                       std::uint64_t seed, const FraudMix* fraud = nullptr);

}  // namespace spade
