// Fraud-pattern injection: synthesizes the three Grab fraud patterns from
// the paper's case studies (Figure 12/13) as labeled bursts inside an
// otherwise normal update stream.
//
//   * customer-merchant collusion — a small ring of customers and merchants
//     trading fictitiously with each other (dense bipartite block),
//   * deal-hunter — a crowd of users hammering a handful of promotional
//     merchants,
//   * click-farming — recruited fraudsters inflating one merchant with very
//     many repeated transactions.
//
// All three materialize as a dense subgraph formed in a short period of
// time, which is what the peeling semantics detect.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "stream/labeled_stream.h"

namespace spade {

enum class FraudPattern {
  kCustomerMerchantCollusion,
  kDealHunter,
  kClickFarming,
};

std::string FraudPatternName(FraudPattern pattern);

/// Shape parameters of one injected fraud instance.
struct FraudInstanceConfig {
  FraudPattern pattern = FraudPattern::kCustomerMerchantCollusion;
  /// Number of fraudulent transactions the instance emits.
  std::size_t num_transactions = 720;
  /// Instance start time and inter-transaction spacing.
  Timestamp start_ts = 0;
  Timestamp micros_per_edge = 1000;
  /// Transaction amount range for the fictitious trades.
  double min_amount = 5.0;
  double max_amount = 50.0;
};

/// Emits the labeled edges of one fraud instance over the given participant
/// pools. Participants are drawn from the pools' *tails* (fresh accounts,
/// ids near the top of each range) so they do not collide with organically
/// popular vertices.
///
/// Returns the edges (ts-ordered) and fills `vertices` with the instance's
/// participant set.
std::vector<Edge> SynthesizeFraudInstance(const FraudInstanceConfig& config,
                                          VertexId customer_begin,
                                          VertexId customer_end,
                                          VertexId merchant_begin,
                                          VertexId merchant_end, Rng* rng,
                                          std::vector<VertexId>* vertices);

/// Splices fraud instances into a normal stream: the result is timestamp
/// sorted, with group ids assigned in `instances` order starting at the
/// current group count of `stream`.
void InjectInstances(LabeledStream* stream,
                     const std::vector<std::vector<Edge>>& instances,
                     const std::vector<std::vector<VertexId>>& vertices);

}  // namespace spade
