#include "datagen/generators.h"

#include <algorithm>

#include "common/logging.h"

namespace spade {

GeneratedGraph GenerateDataset(const DatasetProfile& profile,
                               std::uint64_t seed,
                               Timestamp micros_per_edge) {
  Rng rng(seed);
  GeneratedGraph out;
  out.num_vertices = profile.num_vertices;
  out.edges.reserve(profile.num_edges);

  Timestamp ts = 0;
  if (profile.kind == GraphKind::kTransaction) {
    const auto customers =
        static_cast<std::size_t>(static_cast<double>(profile.num_vertices) * 0.7);
    const std::size_t merchants = profile.num_vertices - customers;
    SPADE_CHECK_GT(customers, 0u);
    SPADE_CHECK_GT(merchants, 0u);
    out.merchant_base = static_cast<VertexId>(customers);
    // Customers repeat-purchase far less than merchants accumulate sales,
    // so the customer side is flatter; this keeps the organic core from
    // out-densifying genuine fraud rings (which real transaction graphs do
    // not do either).
    const double merchant_alpha = profile.zipf_alpha;
    const double customer_alpha = 0.75 * profile.zipf_alpha;
    for (std::size_t i = 0; i < profile.num_edges; ++i) {
      const auto customer =
          static_cast<VertexId>(rng.NextZipf(customers, customer_alpha));
      const auto merchant = static_cast<VertexId>(
          customers + rng.NextZipf(merchants, merchant_alpha));
      ts += micros_per_edge;
      // Transaction amount: skewed toward small everyday purchases (mean
      // ~7); fraud injection uses noticeably larger fictitious amounts.
      const double amount = 1.0 + 19.0 * rng.NextDouble() * rng.NextDouble();
      out.edges.push_back({customer, merchant, amount, ts});
    }
  } else {
    out.merchant_base = static_cast<VertexId>(profile.num_vertices);
    for (std::size_t i = 0; i < profile.num_edges; ++i) {
      auto src = static_cast<VertexId>(
          rng.NextZipf(profile.num_vertices, profile.zipf_alpha));
      auto dst = static_cast<VertexId>(
          rng.NextZipf(profile.num_vertices, profile.zipf_alpha));
      while (dst == src) {
        dst = static_cast<VertexId>(
            rng.NextZipf(profile.num_vertices, profile.zipf_alpha));
      }
      ts += micros_per_edge;
      out.edges.push_back({src, dst, 1.0, ts});
    }
  }
  return out;
}

SplitDataset SplitForReplay(GeneratedGraph graph, double fraction) {
  SplitDataset out;
  out.num_vertices = graph.num_vertices;
  out.merchant_base = graph.merchant_base;
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(graph.edges.size()) * fraction);
  out.initial.assign(graph.edges.begin(),
                     graph.edges.begin() + static_cast<std::ptrdiff_t>(cut));
  out.increments.assign(graph.edges.begin() + static_cast<std::ptrdiff_t>(cut),
                        graph.edges.end());
  return out;
}

}  // namespace spade
