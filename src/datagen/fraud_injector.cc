#include "datagen/fraud_injector.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace spade {

std::string FraudPatternName(FraudPattern pattern) {
  switch (pattern) {
    case FraudPattern::kCustomerMerchantCollusion:
      return "customer-merchant collusion";
    case FraudPattern::kDealHunter:
      return "deal-hunter";
    case FraudPattern::kClickFarming:
      return "click-farming";
  }
  return "?";
}

namespace {

/// Draws `count` distinct ids from the top (freshest) `window` ids of
/// [begin, end).
std::vector<VertexId> DrawFresh(VertexId begin, VertexId end,
                                std::size_t count, Rng* rng) {
  SPADE_CHECK_LT(begin, end);
  const std::size_t range = end - begin;
  const std::size_t window = std::min<std::size_t>(range, count * 8 + 16);
  const VertexId window_begin = static_cast<VertexId>(end - window);
  std::unordered_set<VertexId> chosen;
  while (chosen.size() < std::min(count, window)) {
    chosen.insert(static_cast<VertexId>(window_begin +
                                        rng->NextBounded(window)));
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace

std::vector<Edge> SynthesizeFraudInstance(const FraudInstanceConfig& config,
                                          VertexId customer_begin,
                                          VertexId customer_end,
                                          VertexId merchant_begin,
                                          VertexId merchant_end, Rng* rng,
                                          std::vector<VertexId>* vertices) {
  std::size_t num_customers = 0;
  std::size_t num_merchants = 0;
  switch (config.pattern) {
    case FraudPattern::kCustomerMerchantCollusion:
      // Small ring: a handful of fake accounts on both sides.
      num_customers = 5;
      num_merchants = 5;
      break;
    case FraudPattern::kDealHunter:
      // Many opportunistic users, few promotional merchants.
      num_customers = 24;
      num_merchants = 2;
      break;
    case FraudPattern::kClickFarming:
      // Few recruited fraudsters, one inflated merchant.
      num_customers = 8;
      num_merchants = 1;
      break;
  }

  const auto customers =
      DrawFresh(customer_begin, customer_end, num_customers, rng);
  const auto merchants =
      DrawFresh(merchant_begin, merchant_end, num_merchants, rng);

  vertices->clear();
  vertices->insert(vertices->end(), customers.begin(), customers.end());
  vertices->insert(vertices->end(), merchants.begin(), merchants.end());

  std::vector<Edge> edges;
  edges.reserve(config.num_transactions);
  Timestamp ts = config.start_ts;
  for (std::size_t i = 0; i < config.num_transactions; ++i) {
    const VertexId c =
        customers[rng->NextBounded(customers.size())];
    const VertexId m =
        merchants[rng->NextBounded(merchants.size())];
    const double amount =
        rng->NextDouble(config.min_amount, config.max_amount);
    edges.push_back({c, m, amount, ts});
    ts += config.micros_per_edge;
  }
  return edges;
}

void InjectInstances(LabeledStream* stream,
                     const std::vector<std::vector<Edge>>& instances,
                     const std::vector<std::vector<VertexId>>& vertices) {
  SPADE_CHECK_EQ(instances.size(), vertices.size());
  const auto base_group = static_cast<std::int32_t>(
      stream->group_vertices.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto gid = base_group + static_cast<std::int32_t>(i);
    for (const Edge& e : instances[i]) {
      stream->edges.push_back(e);
      stream->group.push_back(gid);
    }
    stream->group_vertices.push_back(vertices[i]);
  }
  // Restore global timestamp order while keeping labels aligned.
  std::vector<std::size_t> order(stream->edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return stream->edges[a].ts < stream->edges[b].ts;
                   });
  std::vector<Edge> sorted_edges(order.size());
  std::vector<std::int32_t> sorted_group(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_edges[i] = stream->edges[order[i]];
    sorted_group[i] = stream->group[order[i]];
  }
  stream->edges = std::move(sorted_edges);
  stream->group = std::move(sorted_group);
}

}  // namespace spade
