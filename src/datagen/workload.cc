#include "datagen/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace spade {

Workload BuildWorkload(const std::string& profile_name, double scale,
                       std::uint64_t seed, const FraudMix* fraud) {
  Workload w;
  w.profile = GetProfile(profile_name, scale);
  GeneratedGraph generated = GenerateDataset(w.profile, seed);
  SplitDataset split = SplitForReplay(std::move(generated));
  w.num_vertices = split.num_vertices;
  w.merchant_base = split.merchant_base;
  w.initial = std::move(split.initial);
  for (const Edge& e : split.increments) {
    w.stream.Append(e);
  }

  if (fraud != nullptr && !w.stream.edges.empty()) {
    Rng rng(seed ^ 0xf4a0dull);
    const Timestamp t_begin = w.stream.edges.front().ts;
    const Timestamp t_end = w.stream.edges.back().ts;
    const std::size_t total_instances = 3 * fraud->instances_per_pattern;
    const Timestamp stride =
        total_instances == 0
            ? 0
            : (t_end - t_begin) / static_cast<Timestamp>(total_instances + 1);

    // Social profiles have no merchant partition; fraud rings then draw both
    // sides from the full vertex range.
    const VertexId customer_begin = 0;
    const VertexId customer_end =
        w.merchant_base < w.num_vertices
            ? w.merchant_base
            : static_cast<VertexId>(w.num_vertices);
    const VertexId merchant_begin =
        w.merchant_base < w.num_vertices ? w.merchant_base : 0;
    const auto merchant_end = static_cast<VertexId>(w.num_vertices);

    std::vector<std::vector<Edge>> instances;
    std::vector<std::vector<VertexId>> members;
    const FraudPattern patterns[] = {
        FraudPattern::kCustomerMerchantCollusion,
        FraudPattern::kDealHunter,
        FraudPattern::kClickFarming,
    };
    std::size_t slot = 1;
    for (FraudPattern pattern : patterns) {
      for (std::size_t i = 0; i < fraud->instances_per_pattern; ++i, ++slot) {
        FraudInstanceConfig config;
        config.pattern = pattern;
        config.num_transactions = fraud->transactions_per_instance;
        config.start_ts = t_begin + stride * static_cast<Timestamp>(slot);
        config.micros_per_edge = fraud->micros_per_fraud_edge;
        std::vector<VertexId> vertices;
        instances.push_back(SynthesizeFraudInstance(
            config, customer_begin, customer_end, merchant_begin,
            merchant_end, &rng, &vertices));
        members.push_back(std::move(vertices));
      }
    }
    InjectInstances(&w.stream, instances, members);
  }
  return w;
}

}  // namespace spade
