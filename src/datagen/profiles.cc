#include "datagen/profiles.h"

#include <algorithm>

namespace spade {

std::vector<DatasetProfile> AllProfiles() {
  // |V|, |E|, avg degree and increment counts from Table 3.
  return {
      {"Grab1", 3991000, 10000000, 5.011, 1000000, "Transaction",
       GraphKind::kTransaction, 0.9},
      {"Grab2", 4805000, 15000000, 6.243, 1500000, "Transaction",
       GraphKind::kTransaction, 0.9},
      {"Grab3", 5433000, 20000000, 7.366, 2000000, "Transaction",
       GraphKind::kTransaction, 0.9},
      {"Grab4", 6023000, 25000000, 8.302, 2500000, "Transaction",
       GraphKind::kTransaction, 0.9},
      {"Amazon", 28000, 28000, 2.0, 2800, "Review", GraphKind::kSocial, 0.8},
      {"Wiki-Vote", 16000, 103000, 12.88, 10300, "Vote", GraphKind::kSocial,
       0.9},
      {"Epinion", 264000, 841000, 6.37, 84100, "Who-trust-whom",
       GraphKind::kSocial, 0.9},
  };
}

DatasetProfile GetProfile(const std::string& name, double scale) {
  const auto all = AllProfiles();
  DatasetProfile profile = all.front();
  for (const auto& p : all) {
    if (p.name == name) {
      profile = p;
      break;
    }
  }
  if (scale < 1.0) {
    const auto scaled = [scale](std::size_t x) {
      return std::max<std::size_t>(
          16, static_cast<std::size_t>(static_cast<double>(x) * scale));
    };
    profile.num_vertices = scaled(profile.num_vertices);
    profile.num_edges = scaled(profile.num_edges);
    profile.increments = scaled(profile.increments);
  }
  return profile;
}

}  // namespace spade
