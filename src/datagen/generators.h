// Synthetic graph/stream generators. Two topology families cover the
// paper's datasets: a bipartite-leaning customer->merchant transaction
// generator (Grab1-4) and a general directed power-law generator
// (Amazon / Wiki-Vote / Epinion stand-ins). Both emit edges in increasing
// timestamp order so the replay protocol ("replay the edges in increasing
// order of their timestamp") applies directly.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/profiles.h"
#include "graph/types.h"

namespace spade {

/// A generated dataset: a dense vertex universe plus a timestamped edge log.
struct GeneratedGraph {
  std::size_t num_vertices = 0;
  std::vector<Edge> edges;  // sorted by ts
  /// First vertex id of the merchant partition (transaction graphs only;
  /// == num_vertices for social graphs).
  VertexId merchant_base = 0;
};

/// Generates a dataset matching `profile` (vertex/edge counts, degree
/// skew, topology family). Timestamps advance `micros_per_edge` apart.
///
/// Transaction graphs: ~70% of vertices are customers, 30% merchants;
/// both endpoints are drawn Zipf(alpha), biasing edges toward popular
/// accounts exactly like preferential attachment does (Figure 9b's power
/// law). Raw edge weight is a transaction amount in [1, 500).
///
/// Social graphs: both endpoints Zipf over the full vertex set; weight 1.
GeneratedGraph GenerateDataset(const DatasetProfile& profile,
                               std::uint64_t seed,
                               Timestamp micros_per_edge = 1000);

/// Splits a generated edge log into the initial graph (first `fraction`,
/// default the paper's 90%) and the replayed increment stream (the rest).
struct SplitDataset {
  std::size_t num_vertices = 0;
  VertexId merchant_base = 0;
  std::vector<Edge> initial;
  std::vector<Edge> increments;
};
SplitDataset SplitForReplay(GeneratedGraph graph, double fraction = 0.9);

}  // namespace spade
