// Dataset profiles mirroring the paper's Table 3. The proprietary Grab
// datasets and the public SNAP datasets are unavailable offline, so each
// profile drives a synthetic generator that matches the reported vertex and
// edge counts (scaled by a configurable factor), the edge semantics and the
// power-law shape the paper documents (Figure 9b).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spade {

/// Topology family of a profile.
enum class GraphKind {
  /// Customer -> merchant transaction graph (bipartite-leaning, Grab1-4).
  kTransaction,
  /// General directed social-style graph (Amazon/Wiki-Vote/Epinion stand-ins).
  kSocial,
};

/// One row of Table 3.
struct DatasetProfile {
  std::string name;
  std::size_t num_vertices;
  std::size_t num_edges;
  double avg_degree;
  std::size_t increments;  // |ΔE| replayed (10% of |E|)
  std::string type;        // "Transaction", "Review", ...
  GraphKind kind;
  /// Zipf exponent for endpoint popularity.
  double zipf_alpha = 1.05;
};

/// All seven Table 3 profiles at full paper scale.
std::vector<DatasetProfile> AllProfiles();

/// Looks up a profile by name ("Grab1".."Grab4", "Amazon", "Wiki-Vote",
/// "Epinion") and scales its vertex/edge/increment counts by `scale`
/// (0 < scale <= 1). Unknown names return the scaled Grab1 profile.
DatasetProfile GetProfile(const std::string& name, double scale = 1.0);

}  // namespace spade
