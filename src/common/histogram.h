// Simple fixed-bucket and log-scale histograms for latency and degree
// distribution reporting.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spade {

/// Collects scalar samples and reports count/mean/percentiles.
///
/// Samples are retained exactly (the library's workloads are bounded), so
/// percentiles are exact rather than approximated.
class Summary {
 public:
  void Add(double value);

  std::uint64_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact percentile in [0, 100]; sorts lazily on first query.
  double Percentile(double pct) const;

  /// One-line "count=.. mean=.. p50=.. p99=.. max=.." rendering.
  std::string ToString() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0;
};

/// Histogram over integer keys (e.g. vertex degree -> frequency).
class CountHistogram {
 public:
  void Add(std::uint64_t key, std::uint64_t count = 1);

  const std::map<std::uint64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  std::uint64_t total() const { return total_; }

  /// Renders "key frequency" rows, one per line (gnuplot-friendly).
  std::string ToRows() const;

 private:
  std::map<std::uint64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace spade
