// AVX2 kernels for the simd shim. This is the ONLY translation unit built
// with -mavx2 (CMake adds the flag per-source when the SPADE_SIMD option
// resolves to avx2), so the rest of the library stays runnable on any
// x86-64. The canonical association orders are defined in simd.h; the
// shuffles below shift explicit zeros into the vacated lanes, which is why
// the scalar reference carries matching `+ 0.0` terms.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace spade::simd::detail {

double FixedOrderSumAvx2(const double* p, std::size_t n) {
  // Lanes 0..15 in four ymm registers — four independent add chains, so the
  // loop is bound by the two loads per cycle rather than the FP-add
  // latency; spill and finish exactly as the canonical order prescribes.
  __m256d a[kSumLanes / 4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                              _mm256_setzero_pd(), _mm256_setzero_pd()};
  const std::size_t ng = n - n % kSumLanes;
  for (std::size_t i = 0; i < ng; i += kSumLanes) {
    for (std::size_t r = 0; r < kSumLanes / 4; ++r) {
      a[r] = _mm256_add_pd(a[r], _mm256_loadu_pd(p + i + 4 * r));
    }
  }
  double acc[kSumLanes];
  for (std::size_t r = 0; r < kSumLanes / 4; ++r) {
    _mm256_storeu_pd(acc + 4 * r, a[r]);
  }
  for (std::size_t j = 0; j + ng < n; ++j) acc[j] += p[ng + j];
  return FixedOrderTree(acc);
}

double SuffixScanBlockAvx2(const double* p, std::size_t n, double* out) {
  double carry = 0.0;
  const std::size_t rem = n % kScanLanes;
  std::size_t i = n;
  while (i > rem) {
    i -= kScanLanes;
    const __m256d d = _mm256_loadu_pd(p + i);  // [d0 d1 d2 d3]
    // Shift-left-by-2 lanes (zero fill): [d2 d3 0 0].
    const __m256d d_sl2 = _mm256_permute2f128_pd(d, d, 0x81);
    // Shift-left-by-1 lane: [d1 d2 d3 0].
    const __m256d d_sl1 = _mm256_shuffle_pd(d, d_sl2, 0x5);
    const __m256d a = _mm256_add_pd(d, d_sl1);
    const __m256d a_sl2 = _mm256_permute2f128_pd(a, a, 0x81);
    const __m256d s = _mm256_add_pd(a, a_sl2);
    const __m256d r = _mm256_add_pd(s, _mm256_set1_pd(carry));
    _mm256_storeu_pd(out + i, r);
    carry = _mm256_cvtsd_f64(r);
  }
  while (i-- > 0) {
    carry = p[i] + carry;
    out[i] = carry;
  }
  return n > 0 ? out[0] : 0.0;
}

void IotaU32Avx2(std::uint32_t* out, std::size_t n, std::uint32_t start) {
  __m256i v = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(start)),
                               _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
  const __m256i step = _mm256_set1_epi32(8);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    v = _mm256_add_epi32(v, step);
  }
  for (; i < n; ++i) out[i] = start + static_cast<std::uint32_t>(i);
}

}  // namespace spade::simd::detail
