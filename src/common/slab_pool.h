// SlabPool: a bounded recycling pool of edge slabs shared between the
// batched router and the shard workers, so steady-state SubmitBatch
// allocates nothing.
//
// The batched ingest path moves whole vectors ("slabs") of edges through
// the chunk-handoff ring: the router builds one slab per shard, the worker
// consumes it and used to let the vector die — so every chunk cost one
// allocation on the producer side and one deallocation on the consumer
// side. With the pool, workers Put consumed slabs back (cleared, capacity
// kept) and the router Gets them for the next chunk: after warm-up the
// slabs just circulate.
//
// The pool is deliberately dumb: one mutex, a bounded stack of vectors.
// It is touched once per CHUNK (not per edge), and only on the router's
// refill path (a scratch arena that still has capacity never asks), so
// the mutex is nowhere near the per-edge hot path. The bound caps
// resident memory: a Put into a full pool just drops the slab (the
// allocator gets it, exactly as before the pool existed).

#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace spade {

/// Bounded slab recycler (see file comment). Thread-safe.
class SlabPool {
 public:
  explicit SlabPool(std::size_t max_slabs = 64) : cap_(max_slabs) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Pops a recycled slab (empty, capacity intact) or returns a fresh
  /// empty vector when the pool is dry.
  std::vector<Edge> Get() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slabs_.empty()) return {};
    std::vector<Edge> slab = std::move(slabs_.back());
    slabs_.pop_back();
    return slab;
  }

  /// Returns a consumed slab. Cleared but keeps its capacity; dropped
  /// (freed) when the pool is at its bound or the slab never allocated.
  void Put(std::vector<Edge>&& slab) {
    if (slab.capacity() == 0) return;
    slab.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    if (slabs_.size() >= cap_) return;
    slabs_.push_back(std::move(slab));
  }

  /// Slabs currently pooled (diagnostics).
  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slabs_.size();
  }

 private:
  mutable std::mutex mutex_;
  const std::size_t cap_;
  std::vector<std::vector<Edge>> slabs_;
};

}  // namespace spade
