// simd: the shared vector-kernel shim for the peel hot path.
//
// Three width-agnostic kernels back PeelState's blocked detection index and
// the heap rebuild, each implemented once per dispatch target (scalar,
// SSE2, NEON, AVX2) behind a compile-time switch:
//
//  * FixedOrderSum    — reduction over a span of doubles in the CANONICAL
//                       LANE-THEN-TREE ORDER (below), used for block-sum
//                       refresh and SuffixWeight tails.
//  * SuffixScanBlock  — tail-to-head inclusive suffix scan in the canonical
//                       4-lane Hillis-Steele order, the pre-pass feeding the
//                       hull rebuild's scalar monotone stack.
//  * IotaU32          — ascending uint32 fill, the vectorized leaf pass of
//                       the heap's Floyd heapify.
//
// Bit-identity contract. Floating-point addition is not associative, so a
// vectorized reduction only reproduces the scalar result if BOTH commit to
// one fixed association order. The canonical orders are defined in terms of
// a FIXED logical lane count (8 for the sum, 4 for the scan) independent of
// the physical vector width; every target — including the scalar fallback,
// which is always built and is the tie-exactness reference for the
// differential suites — evaluates the identical expression tree, so Detect
// is bit-identical across scalar/SSE2/NEON/AVX2 builds. The dispatch-target
// tests iterate CompiledSimdTargets() and assert exactly that.
//
//  Canonical sum order (kSumLanes = 16): sixteen logical accumulators
//  stride the span head-to-tail, acc[j] += p[16*g + j]; the tail remainder
//  r = n%16 adds p[n - r + j] into acc[j] for j < r; the final value is the
//  fixed tree (((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))) +
//  (((a8+a9)+(a10+a11)) + ((a12+a13)+(a14+a15))) — see detail::
//  FixedOrderTree, the single definition every target calls. AVX2 holds the
//  lanes in four ymm registers, SSE2/NEON in eight 2-lane registers, scalar
//  in sixteen locals — the same tree either way. Sixteen lanes (not eight)
//  so the widest target is bound by load throughput rather than by the
//  4-5 cycle FP-add dependency of fewer, longer accumulator chains.
//
//  Canonical scan order (kScanLanes = 4): groups of four are anchored at
//  the TAIL and processed tail-to-head with a running carry C (the suffix
//  sum beyond the group). Within a group [d0..d3] the two Hillis-Steele
//  steps give s3 = d3, s2 = d2+d3, s1 = (d1+d2)+d3, s0 = (d0+d1)+(d2+d3),
//  and the stored values are s_i + C; the next carry is s0 + C. The head
//  remainder (n % 4 elements) is sequential: out[i] = p[i] + out[i+1].
//
// Dispatch policy. The active target is chosen at compile time by the
// SPADE_SIMD CMake option (auto / avx2 / sse2 / off): AVX2 kernels live in
// their own translation unit (src/common/simd_avx2.cc) which is the ONLY TU
// built with -mavx2, so the rest of the build stays portable; SSE2 and NEON
// are baseline ISA on x86-64 / AArch64 and live in simd.cc directly. Tests
// and benches can also pin a target at runtime through the kernel table
// (CompiledSimdTargets) or the override seam (SetSimdTargetForTesting) —
// the override is a single predictable branch per out-of-line kernel call,
// invisible next to the O(block) work behind it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace spade::simd {

/// Logical lane counts of the canonical orders (NOT the physical vector
/// width — every target emulates exactly these).
inline constexpr std::size_t kSumLanes = 16;
inline constexpr std::size_t kScanLanes = 4;

namespace detail {
/// The canonical reduction tree over the sixteen lane accumulators. Every
/// dispatch target spills its registers into acc[] and finishes here, so
/// the association order has exactly one definition.
inline double FixedOrderTree(const double acc[kSumLanes]) {
  return (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
          ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
         (((acc[8] + acc[9]) + (acc[10] + acc[11])) +
          ((acc[12] + acc[13]) + (acc[14] + acc[15])));
}
}  // namespace detail

/// Best-effort cache-line prefetch for read (locality hint 3). A no-op on
/// compilers without the builtin.
#if defined(__GNUC__) || defined(__clang__)
#define SPADE_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#define SPADE_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define SPADE_PREFETCH(addr) ((void)0)
#define SPADE_PREFETCH_WRITE(addr) ((void)0)
#endif

/// Sum of `p[0..n)` in the canonical lane-then-tree order, dispatched to
/// the active target.
double FixedOrderSum(const double* p, std::size_t n);

/// Inclusive tail-to-head suffix scan in the canonical 4-lane order:
/// out[i] = p[i] + out[i+1] association as defined above. `out` may not
/// alias `p`. Returns out[0] (the span total in scan order — which may
/// differ from FixedOrderSum by ulps; callers must not mix the two as if
/// bit-equal).
double SuffixScanBlock(const double* p, std::size_t n, double* out);

/// out[i] = start + i for i in [0, n).
void IotaU32(std::uint32_t* out, std::size_t n, std::uint32_t start);

/// One dispatch target's kernel set, for tests and benches that sweep
/// scalar vs vector explicitly.
struct SimdTarget {
  const char* name;  // "scalar", "sse2", "neon", "avx2"
  double (*fixed_order_sum)(const double*, std::size_t);
  double (*suffix_scan_block)(const double*, std::size_t, double*);
  void (*iota_u32)(std::uint32_t*, std::size_t, std::uint32_t);
};

/// Every target compiled into this binary, scalar first. The active
/// dispatch target is always present.
std::span<const SimdTarget> CompiledSimdTargets();

/// Name of the target the plain FixedOrderSum/SuffixScanBlock/IotaU32
/// entry points dispatch to (compile-time choice, or the testing override).
const char* ActiveSimdTarget();

/// Test/bench seam: routes the dispatched entry points through `target`
/// (one of CompiledSimdTargets(), or nullptr to restore the compile-time
/// choice). Not thread-safe; only for single-threaded harness setup.
void SetSimdTargetForTesting(const SimdTarget* target);

/// Rounds `n` up to a multiple of the canonical sum lane count — handy for
/// sizing scratch buffers so vector loops never need a masked tail.
inline constexpr std::size_t RoundUpLanes(std::size_t n) {
  return (n + kSumLanes - 1) / kSumLanes * kSumLanes;
}

}  // namespace spade::simd
