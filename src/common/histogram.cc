#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace spade {

void Summary::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::Percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = pct / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

void CountHistogram::Add(std::uint64_t key, std::uint64_t count) {
  buckets_[key] += count;
  total_ += count;
}

std::string CountHistogram::ToRows() const {
  std::ostringstream os;
  for (const auto& [key, freq] : buckets_) {
    os << key << " " << freq << "\n";
  }
  return os.str();
}

}  // namespace spade
