// Wall-clock timing utilities used by benchmarks and latency accounting.

#pragma once

#include <chrono>
#include <cstdint>

namespace spade {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to "now".
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across many timed sections.
class AccumulatingTimer {
 public:
  /// Starts a timed section.
  void Start() { timer_.Restart(); running_ = true; }

  /// Ends the current section and folds its duration into the total.
  void Stop() {
    if (running_) {
      total_micros_ += timer_.ElapsedMicros();
      ++laps_;
      running_ = false;
    }
  }

  double TotalMicros() const { return total_micros_; }
  std::uint64_t laps() const { return laps_; }
  double MeanMicros() const {
    return laps_ == 0 ? 0.0 : total_micros_ / static_cast<double>(laps_);
  }
  void Reset() {
    total_micros_ = 0;
    laps_ = 0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_micros_ = 0;
  std::uint64_t laps_ = 0;
  bool running_ = false;
};

}  // namespace spade
