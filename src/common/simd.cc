// Portable kernel implementations and the compile-time dispatch for the
// simd shim. This TU is built with the project's ordinary flags: SSE2 is
// baseline ISA on x86-64 and NEON on AArch64, so their kernels live here;
// AVX2 needs -mavx2 and lives in its own TU (simd_avx2.cc) that the build
// only compiles when the SPADE_SIMD option enables it.
//
// Every kernel follows the canonical association orders defined in simd.h
// to the letter — including the `+ 0.0` lane adds the vector shuffles
// introduce at the group tail, which the scalar fallback mirrors so even
// signed zeros come out bit-identical across targets.

#include "common/simd.h"

#if !defined(SPADE_SIMD_FORCE_SCALAR)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define SPADE_SIMD_BUILD_SSE2 1
#include <emmintrin.h>
#endif
#if defined(__aarch64__) || defined(_M_ARM64)
#define SPADE_SIMD_BUILD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !SPADE_SIMD_FORCE_SCALAR

namespace spade::simd {
namespace detail {

// ------------------------------------------------------------- scalar ----
// The reference target: always built, always first in the target table.
// The differential and tie-exactness suites hold every other target to
// bit-identical outputs against these.

double FixedOrderSumScalar(const double* p, std::size_t n) {
  double acc[kSumLanes] = {};
  const std::size_t ng = n - n % kSumLanes;
  for (std::size_t i = 0; i < ng; i += kSumLanes) {
    for (std::size_t j = 0; j < kSumLanes; ++j) acc[j] += p[i + j];
  }
  for (std::size_t j = 0; j + ng < n; ++j) acc[j] += p[ng + j];
  return FixedOrderTree(acc);
}

double SuffixScanBlockScalar(const double* p, std::size_t n, double* out) {
  double carry = 0.0;
  const std::size_t rem = n % kScanLanes;
  std::size_t i = n;
  while (i > rem) {
    i -= kScanLanes;
    const double d0 = p[i + 0], d1 = p[i + 1], d2 = p[i + 2], d3 = p[i + 3];
    // Two Hillis-Steele steps; the `+ 0.0` terms are the zeros the vector
    // targets shift in, kept so signed zeros match bit-for-bit.
    const double a0 = d0 + d1, a1 = d1 + d2, a2 = d2 + d3, a3 = d3 + 0.0;
    const double s0 = a0 + a2, s1 = a1 + a3, s2 = a2 + 0.0, s3 = a3 + 0.0;
    out[i + 0] = s0 + carry;
    out[i + 1] = s1 + carry;
    out[i + 2] = s2 + carry;
    out[i + 3] = s3 + carry;
    carry = out[i + 0];
  }
  while (i-- > 0) {
    carry = p[i] + carry;
    out[i] = carry;
  }
  return n > 0 ? out[0] : 0.0;
}

void IotaU32Scalar(std::uint32_t* out, std::size_t n, std::uint32_t start) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = start + static_cast<std::uint32_t>(i);
  }
}

// --------------------------------------------------------------- sse2 ----
#if defined(SPADE_SIMD_BUILD_SSE2)

double FixedOrderSumSse2(const double* p, std::size_t n) {
  // Lanes 0..15 live in eight 2-lane registers; the in-loop adds and the
  // final tree are evaluated in exactly the canonical order after the
  // lanes are spilled.
  __m128d a[kSumLanes / 2] = {
      _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
      _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd()};
  const std::size_t ng = n - n % kSumLanes;
  for (std::size_t i = 0; i < ng; i += kSumLanes) {
    for (std::size_t r = 0; r < kSumLanes / 2; ++r) {
      a[r] = _mm_add_pd(a[r], _mm_loadu_pd(p + i + 2 * r));
    }
  }
  double acc[kSumLanes];
  for (std::size_t r = 0; r < kSumLanes / 2; ++r) {
    _mm_storeu_pd(acc + 2 * r, a[r]);
  }
  for (std::size_t j = 0; j + ng < n; ++j) acc[j] += p[ng + j];
  return FixedOrderTree(acc);
}

double SuffixScanBlockSse2(const double* p, std::size_t n, double* out) {
  const __m128d zero = _mm_setzero_pd();
  double carry = 0.0;
  const std::size_t rem = n % kScanLanes;
  std::size_t i = n;
  while (i > rem) {
    i -= kScanLanes;
    const __m128d d_lo = _mm_loadu_pd(p + i);      // [d0 d1]
    const __m128d d_hi = _mm_loadu_pd(p + i + 2);  // [d2 d3]
    // Logical 4-lane shift-left-by-1: lane j takes d_{j+1}, zero shifts in.
    const __m128d sl1_lo = _mm_shuffle_pd(d_lo, d_hi, 0x1);  // [d1 d2]
    const __m128d sl1_hi = _mm_shuffle_pd(d_hi, zero, 0x1);  // [d3 0]
    const __m128d a_lo = _mm_add_pd(d_lo, sl1_lo);
    const __m128d a_hi = _mm_add_pd(d_hi, sl1_hi);
    // Shift-left-by-2: the high half slides under the low half.
    const __m128d s_lo = _mm_add_pd(a_lo, a_hi);
    const __m128d s_hi = _mm_add_pd(a_hi, zero);
    const __m128d c = _mm_set1_pd(carry);
    const __m128d r_lo = _mm_add_pd(s_lo, c);
    const __m128d r_hi = _mm_add_pd(s_hi, c);
    _mm_storeu_pd(out + i, r_lo);
    _mm_storeu_pd(out + i + 2, r_hi);
    carry = _mm_cvtsd_f64(r_lo);
  }
  while (i-- > 0) {
    carry = p[i] + carry;
    out[i] = carry;
  }
  return n > 0 ? out[0] : 0.0;
}

void IotaU32Sse2(std::uint32_t* out, std::size_t n, std::uint32_t start) {
  std::size_t i = 0;
  __m128i v = _mm_add_epi32(_mm_set1_epi32(static_cast<int>(start)),
                            _mm_set_epi32(3, 2, 1, 0));
  const __m128i step = _mm_set1_epi32(4);
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
    v = _mm_add_epi32(v, step);
  }
  for (; i < n; ++i) out[i] = start + static_cast<std::uint32_t>(i);
}

#endif  // SPADE_SIMD_BUILD_SSE2

// --------------------------------------------------------------- neon ----
#if defined(SPADE_SIMD_BUILD_NEON)

double FixedOrderSumNeon(const double* p, std::size_t n) {
  float64x2_t a[kSumLanes / 2] = {
      vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
      vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  const std::size_t ng = n - n % kSumLanes;
  for (std::size_t i = 0; i < ng; i += kSumLanes) {
    for (std::size_t r = 0; r < kSumLanes / 2; ++r) {
      a[r] = vaddq_f64(a[r], vld1q_f64(p + i + 2 * r));
    }
  }
  double acc[kSumLanes];
  for (std::size_t r = 0; r < kSumLanes / 2; ++r) {
    vst1q_f64(acc + 2 * r, a[r]);
  }
  for (std::size_t j = 0; j + ng < n; ++j) acc[j] += p[ng + j];
  return FixedOrderTree(acc);
}

double SuffixScanBlockNeon(const double* p, std::size_t n, double* out) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  double carry = 0.0;
  const std::size_t rem = n % kScanLanes;
  std::size_t i = n;
  while (i > rem) {
    i -= kScanLanes;
    const float64x2_t d_lo = vld1q_f64(p + i);
    const float64x2_t d_hi = vld1q_f64(p + i + 2);
    const float64x2_t sl1_lo = vextq_f64(d_lo, d_hi, 1);  // [d1 d2]
    const float64x2_t sl1_hi = vextq_f64(d_hi, zero, 1);  // [d3 0]
    const float64x2_t a_lo = vaddq_f64(d_lo, sl1_lo);
    const float64x2_t a_hi = vaddq_f64(d_hi, sl1_hi);
    const float64x2_t s_lo = vaddq_f64(a_lo, a_hi);
    const float64x2_t s_hi = vaddq_f64(a_hi, zero);
    const float64x2_t c = vdupq_n_f64(carry);
    const float64x2_t r_lo = vaddq_f64(s_lo, c);
    const float64x2_t r_hi = vaddq_f64(s_hi, c);
    vst1q_f64(out + i, r_lo);
    vst1q_f64(out + i + 2, r_hi);
    carry = vgetq_lane_f64(r_lo, 0);
  }
  while (i-- > 0) {
    carry = p[i] + carry;
    out[i] = carry;
  }
  return n > 0 ? out[0] : 0.0;
}

void IotaU32Neon(std::uint32_t* out, std::size_t n, std::uint32_t start) {
  const std::uint32_t base[4] = {0, 1, 2, 3};
  uint32x4_t v = vaddq_u32(vdupq_n_u32(start), vld1q_u32(base));
  const uint32x4_t step = vdupq_n_u32(4);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(out + i, v);
    v = vaddq_u32(v, step);
  }
  for (; i < n; ++i) out[i] = start + static_cast<std::uint32_t>(i);
}

#endif  // SPADE_SIMD_BUILD_NEON

// --------------------------------------------------------------- avx2 ----
#if defined(SPADE_SIMD_HAVE_AVX2)
// Defined in simd_avx2.cc, the only TU built with -mavx2.
double FixedOrderSumAvx2(const double* p, std::size_t n);
double SuffixScanBlockAvx2(const double* p, std::size_t n, double* out);
void IotaU32Avx2(std::uint32_t* out, std::size_t n, std::uint32_t start);
#endif

}  // namespace detail

namespace {

constexpr SimdTarget kTargets[] = {
    {"scalar", &detail::FixedOrderSumScalar, &detail::SuffixScanBlockScalar,
     &detail::IotaU32Scalar},
#if defined(SPADE_SIMD_BUILD_SSE2)
    {"sse2", &detail::FixedOrderSumSse2, &detail::SuffixScanBlockSse2,
     &detail::IotaU32Sse2},
#endif
#if defined(SPADE_SIMD_BUILD_NEON)
    {"neon", &detail::FixedOrderSumNeon, &detail::SuffixScanBlockNeon,
     &detail::IotaU32Neon},
#endif
#if defined(SPADE_SIMD_HAVE_AVX2)
    {"avx2", &detail::FixedOrderSumAvx2, &detail::SuffixScanBlockAvx2,
     &detail::IotaU32Avx2},
#endif
};

/// The compile-time dispatch choice: the last (widest) compiled target.
constexpr const SimdTarget& kActive =
    kTargets[sizeof(kTargets) / sizeof(kTargets[0]) - 1];

const SimdTarget* g_override = nullptr;

}  // namespace

std::span<const SimdTarget> CompiledSimdTargets() { return kTargets; }

const char* ActiveSimdTarget() {
  return g_override != nullptr ? g_override->name : kActive.name;
}

void SetSimdTargetForTesting(const SimdTarget* target) {
  g_override = target;
}

double FixedOrderSum(const double* p, std::size_t n) {
  const SimdTarget* t = g_override;
  return t != nullptr ? t->fixed_order_sum(p, n)
                      : kActive.fixed_order_sum(p, n);
}

double SuffixScanBlock(const double* p, std::size_t n, double* out) {
  const SimdTarget* t = g_override;
  return t != nullptr ? t->suffix_scan_block(p, n, out)
                      : kActive.suffix_scan_block(p, n, out);
}

void IotaU32(std::uint32_t* out, std::size_t n, std::uint32_t start) {
  const SimdTarget* t = g_override;
  if (t != nullptr) {
    t->iota_u32(out, n, start);
  } else {
    kActive.iota_u32(out, n, start);
  }
}

}  // namespace spade::simd
