// Deterministic pseudo-random number generation for dataset synthesis and
// property tests. A small, fast xoshiro256** implementation is used so
// results are reproducible across standard libraries (std::mt19937
// distributions are not bit-stable across implementations).

#pragma once

#include <cstdint>
#include <limits>

namespace spade {

/// xoshiro256** generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Power-law (Zipf-like) index in [0, n): P(i) proportional to
  /// (i+1)^-alpha, sampled by inverse-transform on the continuous Pareto
  /// approximation; cheap and adequate for topology synthesis.
  std::uint64_t NextZipf(std::uint64_t n, double alpha) {
    if (n <= 1) return 0;
    // Inverse CDF of a bounded Pareto on [1, n+1).
    const double u = NextDouble();
    double value;
    if (alpha == 1.0) {
      value = std::numeric_limits<double>::min();
      // x = exp(u * ln(n+1))
      double ln_n1 = 0.0;
      {
        double v = static_cast<double>(n + 1);
        // Inline natural log via library call; kept simple.
        ln_n1 = __builtin_log(v);
      }
      value = __builtin_exp(u * ln_n1);
    } else {
      const double one_minus_a = 1.0 - alpha;
      const double n1 = static_cast<double>(n + 1);
      const double hi = __builtin_pow(n1, one_minus_a);
      value = __builtin_pow(1.0 + u * (hi - 1.0), 1.0 / one_minus_a);
    }
    auto idx = static_cast<std::uint64_t>(value) - 1;
    return idx >= n ? n - 1 : idx;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace spade
