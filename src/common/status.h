// Status and Result<T>: exception-free error propagation for the Spade core,
// following the Arrow/RocksDB style of returning rich status objects from
// fallible operations instead of throwing.

#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace spade {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value returned by fallible Spade operations.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper; holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value; yields an OK result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spade

/// Propagates an error status from the current function.
#define SPADE_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::spade::Status _spade_status = (expr);         \
    if (!_spade_status.ok()) return _spade_status;  \
  } while (false)

/// Assigns the value of a Result to `lhs`, propagating errors.
#define SPADE_ASSIGN_OR_RETURN(lhs, expr)              \
  auto _spade_result_##__LINE__ = (expr);              \
  if (!_spade_result_##__LINE__.ok())                  \
    return _spade_result_##__LINE__.status();          \
  lhs = std::move(_spade_result_##__LINE__).value();
