// Minimal leveled logger with compile-out-able debug level and fatal checks.
// Mirrors the style of Arrow's util/logging.h at a much smaller scale.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace spade {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it (used for disabled log levels).
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace spade

#define SPADE_LOG_INTERNAL(level) \
  ::spade::internal::LogMessage(level, __FILE__, __LINE__)

#define SPADE_LOG_DEBUG() SPADE_LOG_INTERNAL(::spade::LogLevel::kDebug)
#define SPADE_LOG_INFO() SPADE_LOG_INTERNAL(::spade::LogLevel::kInfo)
#define SPADE_LOG_WARNING() SPADE_LOG_INTERNAL(::spade::LogLevel::kWarning)
#define SPADE_LOG_ERROR() SPADE_LOG_INTERNAL(::spade::LogLevel::kError)
#define SPADE_LOG_FATAL() SPADE_LOG_INTERNAL(::spade::LogLevel::kFatal)

/// Invariant check that is active in all build types; aborts on failure.
#define SPADE_CHECK(condition)                                      \
  do {                                                              \
    if (!(condition))                                               \
      SPADE_LOG_FATAL() << "Check failed: " #condition " ";        \
  } while (false)

#define SPADE_CHECK_OP(left, op, right)                                      \
  do {                                                                       \
    if (!((left)op(right)))                                                  \
      SPADE_LOG_FATAL() << "Check failed: " #left " " #op " " #right " ("   \
                        << (left) << " vs " << (right) << ") ";             \
  } while (false)

#define SPADE_CHECK_EQ(l, r) SPADE_CHECK_OP(l, ==, r)
#define SPADE_CHECK_NE(l, r) SPADE_CHECK_OP(l, !=, r)
#define SPADE_CHECK_LT(l, r) SPADE_CHECK_OP(l, <, r)
#define SPADE_CHECK_LE(l, r) SPADE_CHECK_OP(l, <=, r)
#define SPADE_CHECK_GT(l, r) SPADE_CHECK_OP(l, >, r)
#define SPADE_CHECK_GE(l, r) SPADE_CHECK_OP(l, >=, r)

#ifndef NDEBUG
#define SPADE_DCHECK(condition) SPADE_CHECK(condition)
#define SPADE_DCHECK_EQ(l, r) SPADE_CHECK_EQ(l, r)
#define SPADE_DCHECK_LE(l, r) SPADE_CHECK_LE(l, r)
#else
#define SPADE_DCHECK(condition) \
  do {                          \
  } while (false)
#define SPADE_DCHECK_EQ(l, r) \
  do {                        \
  } while (false)
#define SPADE_DCHECK_LE(l, r) \
  do {                        \
  } while (false)
#endif
