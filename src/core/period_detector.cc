#include "core/period_detector.h"

#include <algorithm>

#include "common/logging.h"
#include "peel/static_peeler.h"

namespace spade {

PeriodDetector::PeriodDetector(std::size_t num_vertices, std::vector<Edge> log,
                               FraudSemantics semantics)
    : log_(std::move(log)),
      semantics_(std::move(semantics)),
      graph_(num_vertices),
      applied_weight_(log_.size(), 0.0) {
  SPADE_CHECK(std::is_sorted(
      log_.begin(), log_.end(),
      [](const Edge& a, const Edge& b) { return a.ts < b.ts; }));
  if (semantics_.vsusp) {
    for (std::size_t v = 0; v < num_vertices; ++v) {
      graph_.SetVertexWeight(
          static_cast<VertexId>(v),
          semantics_.vsusp(static_cast<VertexId>(v), graph_));
    }
  }
  state_ = PeelStatic(graph_);
}

std::size_t PeriodDetector::LowerBound(Timestamp t) const {
  return static_cast<std::size_t>(
      std::lower_bound(log_.begin(), log_.end(), t,
                       [](const Edge& e, Timestamp ts) { return e.ts < ts; }) -
      log_.begin());
}

Status PeriodDetector::ApplyInsert(std::size_t i) {
  Edge weighted = log_[i];
  if (weighted.src >= graph_.NumVertices() ||
      weighted.dst >= graph_.NumVertices()) {
    return Status::InvalidArgument("PeriodDetector: endpoint out of range");
  }
  if (semantics_.esusp) {
    weighted.weight = semantics_.esusp(log_[i], graph_);
  }
  applied_weight_[i] = weighted.weight;
  return engine_.InsertEdge(&graph_, &state_, weighted, semantics_.vsusp,
                            nullptr);
}

Status PeriodDetector::ApplyDelete(std::size_t i) {
  return engine_.DeleteEdge(&graph_, &state_, log_[i].src, log_[i].dst,
                            nullptr, &applied_weight_[i]);
}

Status PeriodDetector::SetPeriod(Timestamp begin, Timestamp end) {
  if (begin > end) {
    return Status::InvalidArgument("SetPeriod: begin > end");
  }
  // New materialized range [new_lo, new_hi): log entries with
  // begin <= ts <= end.
  const std::size_t new_lo = LowerBound(begin);
  const std::size_t new_hi = LowerBound(end + 1);

  // Figure 17's five cases reduce to two interval differences:
  // delete [lo_, hi_) \ [new_lo, new_hi), insert [new_lo, new_hi) \ [lo_, hi_).
  // Deletions run first so degree-dependent semantics weigh entering edges
  // against the closest approximation of the target period's graph.
  for (std::size_t i = lo_; i < hi_; ++i) {
    if (i < new_lo || i >= new_hi) {
      SPADE_RETURN_NOT_OK(ApplyDelete(i));
    }
  }
  for (std::size_t i = new_lo; i < new_hi; ++i) {
    if (i < lo_ || i >= hi_) {
      SPADE_RETURN_NOT_OK(ApplyInsert(i));
    }
  }
  lo_ = new_lo;
  hi_ = new_hi;
  begin_ = begin;
  end_ = end;
  return Status::OK();
}

}  // namespace spade
