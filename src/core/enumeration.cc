#include "core/enumeration.h"

#include <vector>

#include "peel/static_peeler.h"

namespace spade {

std::vector<Community> EnumerateDenseSubgraphs(
    const DynamicGraph& g, const EnumerateOptions& options) {
  std::vector<Community> result;
  const std::size_t n = g.NumVertices();

  // Survivor mapping: compact ids of the residual graph -> original ids.
  std::vector<VertexId> to_original(n);
  std::vector<VertexId> to_compact(n);
  for (std::size_t v = 0; v < n; ++v) {
    to_original[v] = static_cast<VertexId>(v);
    to_compact[v] = static_cast<VertexId>(v);
  }
  std::vector<char> removed(n, 0);

  DynamicGraph residual;
  const DynamicGraph* current = &g;

  while (result.size() < options.max_communities) {
    if (current->NumVertices() == 0) break;
    const PeelState state = PeelStatic(*current);
    Community community = state.DetectCommunity();
    if (community.density < options.min_density) break;

    // Translate back to original ids.
    Community reported;
    reported.density = community.density;
    reported.members.reserve(community.members.size());
    for (VertexId v : community.members) {
      reported.members.push_back(to_original[v]);
    }
    if (reported.members.size() >= options.min_size) {
      result.push_back(reported);
    }

    // Remove the community and rebuild the compacted residual graph.
    for (VertexId v : reported.members) removed[v] = 1;
    std::vector<VertexId> survivors;
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v]) survivors.push_back(static_cast<VertexId>(v));
    }
    if (survivors.empty()) break;

    DynamicGraph next(survivors.size());
    std::vector<VertexId> next_to_original(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      next_to_original[i] = survivors[i];
      to_compact[survivors[i]] = static_cast<VertexId>(i);
      next.SetVertexWeight(static_cast<VertexId>(i),
                           g.VertexWeight(survivors[i]));
    }
    for (VertexId original : survivors) {
      for (const auto& e : g.OutNeighbors(original)) {
        if (!removed[e.vertex]) {
          const Status s = next.AddEdge(to_compact[original],
                                        to_compact[e.vertex], e.weight);
          SPADE_CHECK(s.ok());
        }
      }
    }
    residual = std::move(next);
    to_original = std::move(next_to_original);
    current = &residual;

    if (reported.members.size() < options.min_size) {
      // The community was too small to report and removing it made no
      // progress guarantees; stop to avoid spinning on singletons.
      break;
    }
  }
  return result;
}

}  // namespace spade
