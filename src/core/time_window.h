// Sliding time-window fraud detection (paper Appendix C.3): maintain the
// peeling sequence of the graph induced by transactions inside a moving
// window [now - span, now], combining the batch insertion path (new edges
// entering the window) with the deletion path (outdated edges leaving it).

#pragma once

#include <deque>
#include <limits>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/incremental_engine.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/semantics.h"
#include "peel/peel_state.h"

namespace spade {

/// Detector over the most recent `window_span` of a timestamped edge stream.
///
/// Edges must be offered in nondecreasing timestamp order. Vertices persist
/// after their edges expire (with their prior weight only), matching the
/// paper's formulation where V evolves by insertion.
class TimeWindowDetector {
 public:
  /// `window_span` is in the same microsecond unit as Edge::ts.
  TimeWindowDetector(std::size_t num_vertices, Timestamp window_span,
                     FraudSemantics semantics);

  /// Feeds one timestamped raw edge; expires everything older than
  /// ts - window_span, then applies the new edge incrementally.
  Status Offer(const Edge& raw_edge);

  /// Advances time without inserting (expires old edges only).
  Status AdvanceTo(Timestamp now);

  /// Community of the current window.
  Community Detect() const { return state_.DetectCommunity(); }

  std::size_t WindowEdgeCount() const { return window_.size(); }
  const DynamicGraph& graph() const { return graph_; }
  const PeelState& peel_state() const { return state_; }

 private:
  Timestamp window_span_;
  FraudSemantics semantics_;
  DynamicGraph graph_;
  PeelState state_;
  IncrementalEngine engine_;
  std::deque<Edge> window_;  // weighted edges currently inside the window
  // Highest timestamp ever observed (Offer or AdvanceTo). Monotonicity is
  // enforced against this, not window_.back().ts, so draining the window
  // empty cannot let time silently run backwards.
  Timestamp high_water_ts_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace spade
