#include "core/spade.h"

#include <algorithm>

#include "graph/graph_io.h"
#include "peel/static_peeler.h"
#include "storage/snapshot.h"

namespace spade {

Spade::Spade(SpadeOptions options) : options_(options) {
  const FraudSemantics dg = MakeDG();
  vsusp_ = dg.vsusp;
  esusp_ = dg.esusp;
}

Edge Spade::Weight(const Edge& raw) const {
  Edge weighted = raw;
  weighted.weight = esusp_ ? esusp_(raw, graph_) : raw.weight;
  return weighted;
}

void Spade::EnsureEndpoints(const Edge& raw) {
  for (VertexId v : {raw.src, raw.dst}) {
    if (v >= graph_.NumVertices()) {
      graph_.EnsureVertices(v + 1);
    }
  }
}

Status Spade::LoadGraph(const std::string& path) {
  auto edges = LoadEdgeList(path);
  if (!edges.ok()) return edges.status();
  std::size_t max_vertex = 0;
  for (const Edge& e : edges.value()) {
    max_vertex = std::max<std::size_t>(max_vertex, std::max(e.src, e.dst));
  }
  return BuildGraph(edges.value().empty() ? 0 : max_vertex + 1,
                    edges.value());
}

Status Spade::BuildGraph(std::size_t num_vertices,
                         std::span<const Edge> raw_edges) {
  graph_ = DynamicGraph(num_vertices);
  benign_buffer_.clear();
  pending_wdeg_.clear();
  stats_.Reset();

  // Vertex priors first (FD reads them back through VSusp side info), then
  // edges in stream order so degree-dependent ESusp instances see the graph
  // grow exactly as the replayed history did.
  if (vsusp_) {
    for (std::size_t v = 0; v < num_vertices; ++v) {
      graph_.SetVertexWeight(static_cast<VertexId>(v),
                             vsusp_(static_cast<VertexId>(v), graph_));
    }
  }
  for (const Edge& raw : raw_edges) {
    if (raw.src >= num_vertices || raw.dst >= num_vertices) {
      return Status::InvalidArgument("BuildGraph: endpoint out of range");
    }
    SPADE_RETURN_NOT_OK(
        graph_.AddEdge(raw.src, raw.dst, Weight(raw).weight));
  }
  state_ = PeelStatic(graph_);
  return Status::OK();
}

Community Spade::Detect() {
  const Status s = Flush();
  SPADE_CHECK(s.ok());
  return state_.DetectCommunity();
}

bool Spade::IsBenign(const Edge& weighted_edge) const {
  if (!options_.enable_edge_grouping) return false;
  if (weighted_edge.src >= graph_.NumVertices() ||
      weighted_edge.dst >= graph_.NumVertices() ||
      !state_.ContainsVertex(weighted_edge.src) ||
      !state_.ContainsVertex(weighted_edge.dst)) {
    // A brand-new account transacting is treated as urgent.
    return false;
  }
  const double threshold = state_.BestDensity();
  for (VertexId v : {weighted_edge.src, weighted_edge.dst}) {
    double w0 = graph_.WeightedDegree(v) + weighted_edge.weight;
    if (auto it = pending_wdeg_.find(v); it != pending_wdeg_.end()) {
      w0 += it->second;
    }
    if (w0 >= threshold) return false;
  }
  return true;
}

Status Spade::Flush() {
  if (benign_buffer_.empty()) return Status::OK();
  std::vector<Edge> batch;
  batch.swap(benign_buffer_);
  pending_wdeg_.clear();
  return InsertWeightedBatch(batch);
}

Status Spade::InsertWeightedBatch(std::span<const Edge> weighted) {
  return engine_.InsertBatch(&graph_, &state_, weighted, vsusp_, &stats_);
}

Status Spade::ApplyEdge(const Edge& raw_edge, double* applied_weight) {
  // Reject before growing the graph: a failed insert must not leave
  // vertices the peel state does not cover.
  if (raw_edge.src == raw_edge.dst) {
    return Status::InvalidArgument("ApplyEdge: self-loops not supported");
  }
  EnsureEndpoints(raw_edge);
  const Edge weighted = Weight(raw_edge);
  // The weight is fixed here, at admission — a benign-buffered edge still
  // enters the graph with this value when the buffer flushes, so it is the
  // weight a later RetireEdge must subtract.
  if (applied_weight != nullptr) *applied_weight = weighted.weight;
  if (options_.enable_edge_grouping) {
    if (IsBenign(weighted) &&
        benign_buffer_.size() < options_.max_benign_buffer) {
      benign_buffer_.push_back(weighted);
      pending_wdeg_[weighted.src] += weighted.weight;
      pending_wdeg_[weighted.dst] += weighted.weight;
      return Status::OK();
    }
    // Urgent edge: reorder the whole buffer together with it (Algorithm 3).
    benign_buffer_.push_back(weighted);
    std::vector<Edge> batch;
    batch.swap(benign_buffer_);
    pending_wdeg_.clear();
    return InsertWeightedBatch(batch);
  }
  return InsertWeightedBatch(std::span<const Edge>(&weighted, 1));
}

Status Spade::ApplyBatchEdges(std::span<const Edge> raw_edges) {
  SPADE_RETURN_NOT_OK(Flush());
  for (const Edge& raw : raw_edges) {
    // Reject before growing the graph: a failed insert must not leave
    // vertices the peel state does not cover.
    if (raw.src == raw.dst) {
      return Status::InvalidArgument(
          "ApplyBatchEdges: self-loops not supported");
    }
  }
  std::vector<Edge> weighted;
  weighted.reserve(raw_edges.size());
  for (const Edge& raw : raw_edges) {
    EnsureEndpoints(raw);
    weighted.push_back(Weight(raw));
  }
  return InsertWeightedBatch(weighted);
}

Result<Community> Spade::InsertEdge(const Edge& raw_edge) {
  SPADE_RETURN_NOT_OK(ApplyEdge(raw_edge));
  return state_.DetectCommunity();
}

Result<Community> Spade::InsertBatchEdges(std::span<const Edge> raw_edges) {
  SPADE_RETURN_NOT_OK(ApplyBatchEdges(raw_edges));
  return state_.DetectCommunity();
}

Status Spade::DeleteEdge(VertexId src, VertexId dst) {
  SPADE_RETURN_NOT_OK(Flush());
  return engine_.DeleteEdge(&graph_, &state_, src, dst, &stats_);
}

Status Spade::RetireEdge(VertexId src, VertexId dst, double applied_weight) {
  // The flush is part of the replayable history: RetireEdge at position k
  // of the stream always flushes the same buffered prefix, live or during
  // chain replay, so no explicit flush marker precedes retire records.
  SPADE_RETURN_NOT_OK(Flush());
  return engine_.DeleteEdge(&graph_, &state_, src, dst, &stats_,
                            &applied_weight);
}

Status Spade::SaveState(const std::string& path) {
  SPADE_RETURN_NOT_OK(Flush());
  return SaveSnapshot(path, graph_, &state_);
}

Status Spade::RestoreState(const std::string& path) {
  DynamicGraph graph;
  PeelState state;
  bool state_present = false;
  SPADE_RETURN_NOT_OK(LoadSnapshot(path, &graph, &state, &state_present));
  RestoreFromParts(std::move(graph), std::move(state), state_present);
  return Status::OK();
}

void Spade::RestoreFromParts(DynamicGraph graph, PeelState state,
                             bool state_present) {
  graph_ = std::move(graph);
  state_ = state_present ? std::move(state) : PeelStatic(graph_);
  benign_buffer_.clear();
  pending_wdeg_.clear();
  stats_.Reset();
}

}  // namespace spade
