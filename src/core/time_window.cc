#include "core/time_window.h"

#include "peel/static_peeler.h"

namespace spade {

TimeWindowDetector::TimeWindowDetector(std::size_t num_vertices,
                                       Timestamp window_span,
                                       FraudSemantics semantics)
    : window_span_(window_span),
      semantics_(std::move(semantics)),
      graph_(num_vertices) {
  if (semantics_.vsusp) {
    for (std::size_t v = 0; v < num_vertices; ++v) {
      graph_.SetVertexWeight(static_cast<VertexId>(v),
                             semantics_.vsusp(static_cast<VertexId>(v), graph_));
    }
  }
  state_ = PeelStatic(graph_);
}

Status TimeWindowDetector::AdvanceTo(Timestamp now) {
  if (now > high_water_ts_) high_water_ts_ = now;
  const Timestamp horizon = now - window_span_;
  while (!window_.empty() && window_.front().ts < horizon) {
    const Edge& old = window_.front();
    SPADE_RETURN_NOT_OK(engine_.DeleteEdge(&graph_, &state_, old.src, old.dst,
                                           nullptr, &old.weight));
    window_.pop_front();
  }
  return Status::OK();
}

Status TimeWindowDetector::Offer(const Edge& raw_edge) {
  // Validate everything BEFORE advancing time: a rejected Offer must leave
  // the detector untouched (no expiry side effects), and monotonicity is
  // checked against the persistent high-water mark so an empty window does
  // not reopen the past.
  if (raw_edge.ts < high_water_ts_) {
    return Status::InvalidArgument(
        "TimeWindowDetector: edges must arrive in timestamp order");
  }
  if (raw_edge.src >= graph_.NumVertices() ||
      raw_edge.dst >= graph_.NumVertices()) {
    return Status::InvalidArgument("TimeWindowDetector: unknown endpoint");
  }
  SPADE_RETURN_NOT_OK(AdvanceTo(raw_edge.ts));
  Edge weighted = raw_edge;
  if (semantics_.esusp) {
    weighted.weight = semantics_.esusp(raw_edge, graph_);
  }
  SPADE_RETURN_NOT_OK(engine_.InsertEdge(&graph_, &state_, weighted,
                                         semantics_.vsusp, nullptr));
  window_.push_back(weighted);
  return Status::OK();
}

}  // namespace spade
