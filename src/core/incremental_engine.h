// IncrementalEngine: peeling-sequence reordering under graph updates.
//
// Implements the paper's three incremental techniques:
//   * single edge insertion (§4.1) — a batch of size one,
//   * peeling sequence reordering in batch (Algorithm 2, §4.2) with the
//     black/gray/white affected-vertex coloring,
//   * edge deletion (Appendix C.1) via backward splice + forward merge.
//
// The engine rewrites the affected slice of the PeelState in place; the
// unaffected prefix (Lemma 4.1) and the suffix beyond the affected area are
// never touched. All scratch structures are engine members so steady-state
// updates allocate nothing.
//
// Correctness invariant of the merge loop (DESIGN.md §2.4): every vertex in
// the pending queue T and every vertex already emitted has an original
// position before the scan cursor, so the stored peeling weight of any
// unscanned vertex counts exactly its edges into the unscanned region; gray
// recovery adds back the edges into T.
//
// Gray recovery is O(1) per push (DESIGN.md §3.1): instead of recomputing a
// vertex's pending weight from the graph on every push, the engine
// maintains an epoch-stamped per-vertex accumulator `recov_` holding the
// exact correction between the stored peeling weight and the true pending
// weight. The accumulator is updated as neighbors enter T (+c for the
// later-positioned endpoint), leave T by emission (-c for every unscanned
// neighbor), and as inserted edges arrive (+c mirroring what the stored
// weight would have counted). Each affected vertex then pays exactly one
// incident pass per state transition (push, emit) — never one per
// relaxation or per queue examination.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/semantics.h"
#include "peel/indexed_heap.h"
#include "peel/peel_state.h"

namespace spade {

/// Cost accounting for one reorder invocation — the paper's affected area
/// G_T = (V_T, E_T).
struct ReorderStats {
  /// Vertices that entered the pending queue T (|V_T|).
  std::size_t affected_vertices = 0;
  /// Incident-edge entries scanned while recovering/updating weights (|E_T|).
  std::size_t touched_edges = 0;
  /// Width of the rewritten window of the peeling sequence.
  std::size_t rewritten_span = 0;
  /// Pending weights served O(1) from the stored-delta recovery accumulator
  /// (each one an incident-list rescan the legacy path would have paid).
  std::size_t recovery_lookups = 0;

  void Reset() { *this = ReorderStats(); }
  void Accumulate(const ReorderStats& other) {
    affected_vertices += other.affected_vertices;
    touched_edges += other.touched_edges;
    rewritten_span += other.rewritten_span;
    recovery_lookups += other.recovery_lookups;
  }
};

/// Tuning knobs for the incremental engine.
struct IncrementalOptions {
  /// When true (default), pending weights come from the paper's Algorithm 2
  /// stored-delta gray recovery in O(1) per push. When false, every push
  /// recomputes the weight from the graph in O(deg) — the pre-optimization
  /// behavior, kept as a differential baseline for tests and benchmarks.
  bool stored_delta_recovery = true;
};

/// Stateful incremental reorderer bound to one (graph, peel state) pair.
class IncrementalEngine {
 public:
  IncrementalEngine() = default;
  explicit IncrementalEngine(IncrementalOptions options)
      : options_(options) {}

  /// Inserts a batch of weighted edges (weight = final suspiciousness c_ij)
  /// into `g` and reorders `state` so it equals a from-scratch peel of the
  /// updated graph. Unknown endpoints are created as new vertices whose
  /// prior comes from `vsusp` (may be null => prior 0).
  ///
  /// Preconditions: `state` is a valid peeling of `g`; every edge weight is
  /// positive.
  Status InsertBatch(DynamicGraph* g, PeelState* state,
                     std::span<const Edge> edges, const VertexSuspFn& vsusp,
                     ReorderStats* stats);

  /// Single-edge convenience wrapper (|ΔE| = 1).
  Status InsertEdge(DynamicGraph* g, PeelState* state, const Edge& edge,
                    const VertexSuspFn& vsusp, ReorderStats* stats);

  /// Removes one (src, dst) edge from `g` and restores `state` to a valid
  /// canonical peeling of the shrunken graph (Appendix C.1 extension).
  /// `weight_filter`, when non-null, selects which parallel copy to remove.
  Status DeleteEdge(DynamicGraph* g, PeelState* state, VertexId src,
                    VertexId dst, ReorderStats* stats,
                    const double* weight_filter = nullptr);

  /// Test-only: jumps the epoch counter (exercises wrap-around handling).
  void ForceEpochForTesting(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  enum class Color : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };

  /// All epoch-stamped per-vertex merge scratch, packed into one struct
  /// behind a single stamp, so a neighbor touch during the hot incident
  /// passes costs one cache line and one stamp branch instead of one per
  /// array (high-degree vertices make these passes memory-bound).
  struct VertexScratch {
    std::uint32_t stamp = 0;
    std::uint8_t color = 0;  // Color
    bool emitted = false;
    bool deferred = false;  // in uncredited_ with its credit pass pending
    double recov = 0.0;
  };

  void EnsureScratch(VertexId v) {
    if (v >= scratch_vertex_.size()) scratch_vertex_.resize(v + 1);
  }

  /// Canonicalized scratch access: the first touch in an epoch resets every
  /// field, so callers read and write fields directly afterwards.
  VertexScratch& Scratch(VertexId v) {
    VertexScratch& s = scratch_vertex_[v];
    if (s.stamp != epoch_) {
      s.stamp = epoch_;
      s.color = static_cast<std::uint8_t>(Color::kWhite);
      s.emitted = false;
      s.deferred = false;
      s.recov = 0.0;
    }
    return s;
  }

  /// Read-only lookups: stale-stamped entries read as the epoch defaults
  /// without canonicalizing (no store, no dirtied line).
  Color ColorOf(VertexId v) const {
    const VertexScratch& s = scratch_vertex_[v];
    return s.stamp == epoch_ ? static_cast<Color>(s.color) : Color::kWhite;
  }
  void SetColor(VertexId v, Color c) {
    Scratch(v).color = static_cast<std::uint8_t>(c);
  }

  /// Starts a fresh update: invalidates all colors, emitted flags and
  /// recovery accumulators. When the 32-bit epoch wraps, stale stamps from
  /// ~4 billion updates ago could alias the restarted counter, so every
  /// stamp is cleared to the never-current value 0 first.
  void BumpEpoch() {
    uncredited_.clear();
    deferred_count_ = 0;
    credit_budget_ = 0;
    if (++epoch_ == 0) {
      std::fill(scratch_vertex_.begin(), scratch_vertex_.end(),
                VertexScratch{});
      epoch_ = 1;
    }
  }

  /// Emitted-this-merge flag (distinguishes peeled vertices from unscanned
  /// ones whose rewritten position may exceed the scan cursor).
  bool IsEmitted(VertexId v) const {
    const VertexScratch& s = scratch_vertex_[v];
    return s.stamp == epoch_ && s.emitted;
  }
  void MarkEmitted(VertexId v) { Scratch(v).emitted = true; }

  /// Stored-delta recovery accumulator (DESIGN.md §3.1): the running
  /// correction between an unscanned vertex's stored peeling weight and its
  /// true pending weight. Epoch-stamped, so reset is free.
  double RecovOf(VertexId v) const {
    const VertexScratch& s = scratch_vertex_[v];
    return s.stamp == epoch_ ? s.recov : 0.0;
  }
  void AddRecov(VertexId v, double amount) { Scratch(v).recov += amount; }

  /// Runs the three-case merge loop from `start`. `black_positions` must be
  /// sorted ascending; the queue may be pre-seeded (deletion path).
  void MergeLoop(const DynamicGraph& g, PeelState* state,
                 const std::vector<std::size_t>& black_positions,
                 std::size_t start, ReorderStats* stats);

  /// Pops the head of T into position `w` and relaxes its T-neighbors.
  /// Vertices peeling ahead of their old schedule sweep their unscanned
  /// neighbors into the queue.
  void EmitFromQueue(const DynamicGraph& g, PeelState* state, std::size_t w,
                     std::size_t k, ReorderStats* stats);

  /// Pushes u — whose pre-merge position is `old_pos` — into the pending
  /// queue at `weight`. In recovery mode the graying/crediting incident
  /// pass is deferred: colors and accumulators are only consulted when the
  /// merge classifies a slot (case 2), so a vertex that pops back out of T
  /// before the next classification never pays its incident pass at all —
  /// FlushCredits() settles the books lazily. Legacy mode grays eagerly.
  void PushPending(const DynamicGraph& g, VertexId u, std::size_t old_pos,
                   double weight, ReorderStats* stats);

  /// Applies the deferred gray+credit incident pass of every pending queue
  /// member that has not had one yet (u's edge counts toward the pending
  /// weight of every later-positioned unscanned neighbor even though their
  /// stored weight missed it). Must run before any slot classification or
  /// recovered-weight read.
  void FlushCredits(const DynamicGraph& g, const PeelState& state,
                    ReorderStats* stats);

  /// Exact current peeling weight of u over the true pending set (queue
  /// members plus unscanned vertices), recomputed from the graph in
  /// O(deg(u)). Used by the legacy (non-recovery) mode and by the deletion
  /// path's splice seeding, where the weight is taken at an arbitrary
  /// cursor rather than at u's own slot.
  double ExactPendingWeight(const DynamicGraph& g, VertexId u, std::size_t k,
                            const PeelState& state,
                            ReorderStats* stats) const;

  /// Pending weight of the unscanned vertex u read at its own pre-merge
  /// slot `k` (the only place the stored-delta identity holds): the stored
  /// peeling weight plus the recovery accumulator, O(1). Falls back to the
  /// from-graph recomputation when stored-delta recovery is disabled.
  double RecoveredWeight(const DynamicGraph& g, const PeelState& state,
                         VertexId u, double stored_delta, std::size_t k,
                         ReorderStats* stats) const;

  /// Refills the merge loop's read-ahead window with the pre-update entries
  /// at positions [k, min(k + kLookahead, n)). Pre-update values at
  /// positions at or beyond the scan cursor are immutable for the rest of
  /// the merge (WriteEntry preserves an old entry into the scratch window
  /// before overwriting it), so the fill resolves the scratch-vs-live split
  /// ONCE per window instead of branching per slot, and the classification
  /// that follows starts from an already-prefetched packed-scratch line for
  /// every incumbent in the window.
  void FillLookahead(const PeelState& state, std::size_t k, std::size_t n);

  /// Drops the read-ahead window (required whenever the scan cursor jumps —
  /// gap skips rebase the scratch window underneath it).
  void InvalidateLookahead() { lookahead_count_ = 0; }

  /// ForEachIncident with a software-prefetch hook: `prefetch(v)` fires for
  /// the neighbor kProbeDistance entries ahead of the one `fn` visits, so
  /// the slot_/pos_/scratch indirections of the hot credit and relaxation
  /// probes stream in behind the adjacency walk instead of stalling it (the
  /// neighbor ids are effectively random, one demand miss per edge
  /// otherwise).
  template <typename Prefetch, typename Fn>
  void ForEachIncidentPrefetched(const DynamicGraph& g, VertexId u,
                                 Prefetch&& prefetch, Fn&& fn) const {
    const auto walk = [&](const std::vector<NeighborEntry>& list) {
      const std::size_t n = list.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kProbeDistance < n) prefetch(list[i + kProbeDistance].vertex);
        fn(list[i].vertex, list[i].weight);
      }
    };
    walk(g.OutNeighbors(u));
    walk(g.InNeighbors(u));
  }

  /// Writes the new entry at position w, preserving the old entry in the
  /// scratch window first.
  void WriteEntry(PeelState* state, std::size_t w, VertexId v, double delta);

  /// Drops the scratch window and restarts it at `base` (used when the merge
  /// jumps over an untouched gap between black vertices).
  void RebaseScratch(std::size_t base) {
    scratch_base_ = base;
    scratch_seq_.clear();
    scratch_delta_.clear();
  }

  IncrementalOptions options_;

  IndexedMinHeap pending_;  // the paper's T
  std::vector<VertexScratch> scratch_vertex_;
  std::uint32_t epoch_ = 0;

  std::vector<std::size_t> black_positions_;
  std::vector<VertexId> new_vertices_;
  std::vector<VertexId> batch_endpoints_;  // sorted, for gap-fill exclusion
  std::vector<std::pair<std::size_t, double>> neighbor_weight_by_pos_;

  // Queue members whose gray+credit incident pass is still deferred
  // (vertex, pre-merge position). Settled by FlushCredits or cancelled
  // O(1) when the member pops unread (the scratch `deferred` flag is the
  // source of truth; popped members leave stale list entries that the
  // flush skips). The budget is the summed degree of the deferred members,
  // spent on white-slot adjacency probes so probing never exceeds the cost
  // of the deferred passes themselves.
  std::vector<std::pair<VertexId, std::size_t>> uncredited_;
  std::size_t deferred_count_ = 0;
  std::ptrdiff_t credit_budget_ = 0;

  // Sliding preservation window: old entries of positions the write cursor
  // has already overwritten, so reads at the scan cursor stay pre-update.
  std::size_t scratch_base_ = 0;
  std::vector<VertexId> scratch_seq_;
  std::vector<double> scratch_delta_;

  // Batched read-ahead over the scan cursor (see FillLookahead): SoA copies
  // of the next few pre-update entries, refilled in branch-light batches.
  static constexpr std::size_t kLookahead = 16;
  // Prefetch distance (in neighbor-list entries) for the adjacency probes.
  static constexpr std::size_t kProbeDistance = 8;
  std::array<VertexId, kLookahead> lookahead_vertex_;
  std::array<double, kLookahead> lookahead_delta_;
  std::size_t lookahead_base_ = 0;   // position of lookahead_*[0]
  std::size_t lookahead_count_ = 0;  // valid entries (0 = invalid)
};

}  // namespace spade
