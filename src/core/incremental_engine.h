// IncrementalEngine: peeling-sequence reordering under graph updates.
//
// Implements the paper's three incremental techniques:
//   * single edge insertion (§4.1) — a batch of size one,
//   * peeling sequence reordering in batch (Algorithm 2, §4.2) with the
//     black/gray/white affected-vertex coloring,
//   * edge deletion (Appendix C.1) via backward splice + forward merge.
//
// The engine rewrites the affected slice of the PeelState in place; the
// unaffected prefix (Lemma 4.1) and the suffix beyond the affected area are
// never touched. All scratch structures are engine members so steady-state
// updates allocate nothing.
//
// Correctness invariant of the merge loop (DESIGN.md §2.4): every vertex in
// the pending queue T and every vertex already emitted has an original
// position before the scan cursor, so the stored peeling weight of any
// unscanned vertex counts exactly its edges into the unscanned region; gray
// recovery adds back the edges into T.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/semantics.h"
#include "peel/indexed_heap.h"
#include "peel/peel_state.h"

namespace spade {

/// Cost accounting for one reorder invocation — the paper's affected area
/// G_T = (V_T, E_T).
struct ReorderStats {
  /// Vertices that entered the pending queue T (|V_T|).
  std::size_t affected_vertices = 0;
  /// Incident-edge entries scanned while recovering/updating weights (|E_T|).
  std::size_t touched_edges = 0;
  /// Width of the rewritten window of the peeling sequence.
  std::size_t rewritten_span = 0;

  void Reset() { *this = ReorderStats(); }
  void Accumulate(const ReorderStats& other) {
    affected_vertices += other.affected_vertices;
    touched_edges += other.touched_edges;
    rewritten_span += other.rewritten_span;
  }
};

/// Stateful incremental reorderer bound to one (graph, peel state) pair.
class IncrementalEngine {
 public:
  IncrementalEngine() = default;

  /// Inserts a batch of weighted edges (weight = final suspiciousness c_ij)
  /// into `g` and reorders `state` so it equals a from-scratch peel of the
  /// updated graph. Unknown endpoints are created as new vertices whose
  /// prior comes from `vsusp` (may be null => prior 0).
  ///
  /// Preconditions: `state` is a valid peeling of `g`; every edge weight is
  /// positive.
  Status InsertBatch(DynamicGraph* g, PeelState* state,
                     std::span<const Edge> edges, const VertexSuspFn& vsusp,
                     ReorderStats* stats);

  /// Single-edge convenience wrapper (|ΔE| = 1).
  Status InsertEdge(DynamicGraph* g, PeelState* state, const Edge& edge,
                    const VertexSuspFn& vsusp, ReorderStats* stats);

  /// Removes one (src, dst) edge from `g` and restores `state` to a valid
  /// canonical peeling of the shrunken graph (Appendix C.1 extension).
  /// `weight_filter`, when non-null, selects which parallel copy to remove.
  Status DeleteEdge(DynamicGraph* g, PeelState* state, VertexId src,
                    VertexId dst, ReorderStats* stats,
                    const double* weight_filter = nullptr);

 private:
  enum class Color : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };

  /// Epoch-stamped color lookup (O(1) reset between updates).
  Color ColorOf(VertexId v) const {
    return (v < color_stamp_.size() && color_stamp_[v] == epoch_)
               ? static_cast<Color>(color_value_[v])
               : Color::kWhite;
  }
  void SetColor(VertexId v, Color c) {
    if (v >= color_stamp_.size()) {
      color_stamp_.resize(v + 1, 0);
      color_value_.resize(v + 1, 0);
    }
    color_stamp_[v] = epoch_;
    color_value_[v] = static_cast<std::uint8_t>(c);
  }

  /// Starts a fresh update: invalidates all colors and emitted stamps.
  void BumpEpoch() { epoch_ = epoch_ + 1 == 0 ? 1 : epoch_ + 1; }

  /// Emitted-this-merge stamp (distinguishes peeled vertices from unscanned
  /// ones whose rewritten position may exceed the scan cursor).
  bool IsEmitted(VertexId v) const {
    return v < emitted_stamp_.size() && emitted_stamp_[v] == epoch_;
  }
  void MarkEmitted(VertexId v) {
    if (v >= emitted_stamp_.size()) emitted_stamp_.resize(v + 1, 0);
    emitted_stamp_[v] = epoch_;
  }

  /// Runs the three-case merge loop from `start`. `black_positions` must be
  /// sorted ascending; the queue may be pre-seeded (deletion path).
  void MergeLoop(const DynamicGraph& g, PeelState* state,
                 const std::vector<std::size_t>& black_positions,
                 std::size_t start, ReorderStats* stats);

  /// Pops the head of T into position `w` and relaxes its T-neighbors.
  /// Vertices peeling ahead of their old schedule sweep their unscanned
  /// neighbors into the queue.
  void EmitFromQueue(const DynamicGraph& g, PeelState* state, std::size_t w,
                     std::size_t k, ReorderStats* stats);

  /// Pushes u into the pending queue and grays its neighbors.
  void PushPending(const DynamicGraph& g, VertexId u, double weight,
                   ReorderStats* stats);

  /// Exact current peeling weight of u over the true pending set
  /// (queue members plus unscanned vertices); replaces the paper's stored-
  /// delta "recovery" with a from-graph computation of the same quantity.
  double ExactPendingWeight(const DynamicGraph& g, VertexId u, std::size_t k,
                            const PeelState& state,
                            ReorderStats* stats) const;

  /// Reads the pre-update entry at position k (scratch if already
  /// overwritten, live state otherwise).
  void ReadEntry(const PeelState& state, std::size_t k, VertexId* v,
                 double* delta) const;

  /// Writes the new entry at position w, preserving the old entry in the
  /// scratch window first.
  void WriteEntry(PeelState* state, std::size_t w, VertexId v, double delta);

  /// Drops the scratch window and restarts it at `base` (used when the merge
  /// jumps over an untouched gap between black vertices).
  void RebaseScratch(std::size_t base) {
    scratch_base_ = base;
    scratch_seq_.clear();
    scratch_delta_.clear();
  }

  IndexedMinHeap pending_;  // the paper's T
  std::vector<std::uint32_t> color_stamp_;
  std::vector<std::uint8_t> color_value_;
  std::vector<std::uint32_t> emitted_stamp_;
  std::uint32_t epoch_ = 0;

  std::vector<std::size_t> black_positions_;
  std::vector<VertexId> new_vertices_;
  std::vector<std::pair<std::size_t, double>> neighbor_weight_by_pos_;

  // Sliding preservation window: old entries of positions the write cursor
  // has already overwritten, so reads at the scan cursor stay pre-update.
  std::size_t scratch_base_ = 0;
  std::vector<VertexId> scratch_seq_;
  std::vector<double> scratch_delta_;
};

}  // namespace spade
