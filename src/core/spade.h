// Spade: the user-facing framework class (paper Listing 1).
//
// Developers plug in their fraud semantics through VSusp/ESusp (or a
// prebuilt FraudSemantics), load or build a transaction graph, and then
// stream edge insertions; Spade auto-incrementalizes the peeling algorithm
// and returns the up-to-date fraudulent community after every update.
//
// Edge grouping (Algorithm 3) is optional: when enabled, provably benign
// edges (Definition 4.1) are buffered and folded in lazily by the batch
// reorderer, while urgent edges flush the buffer and reorder immediately.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/incremental_engine.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/semantics.h"
#include "peel/peel_state.h"

namespace spade {

/// Tuning knobs for the framework.
struct SpadeOptions {
  /// Enables Algorithm 3: benign edges buffer until an urgent edge (or the
  /// buffer cap, or an explicit Detect/Flush) triggers a batch reorder.
  bool enable_edge_grouping = false;

  /// Hard cap on the benign buffer; reaching it forces a flush so latency
  /// stays bounded even on fully benign streams.
  std::size_t max_benign_buffer = 100000;
};

/// The real-time fraud detection framework.
class Spade {
 public:
  explicit Spade(SpadeOptions options = {});

  /// Movable but not copyable: detectors are moved into service shards
  /// (ShardWorker takes one by value), and the graph plus peeling state can
  /// be hundreds of megabytes — an accidental copy is always a bug. All
  /// members are value types with no cross-references, so the defaulted
  /// moves leave the detector fully functional at its new address.
  Spade(Spade&&) = default;
  Spade& operator=(Spade&&) = default;
  Spade(const Spade&) = delete;
  Spade& operator=(const Spade&) = delete;

  /// Plugs in the vertex suspiciousness function (a_u).
  void VSusp(VertexSuspFn vsusp) { vsusp_ = std::move(vsusp); }
  /// Plugs in the edge suspiciousness function (c_ij).
  void ESusp(EdgeSuspFn esusp) { esusp_ = std::move(esusp); }
  /// Installs both functions of a named semantics (DG / DW / FD / custom).
  void SetSemantics(const FraudSemantics& semantics) {
    vsusp_ = semantics.vsusp;
    esusp_ = semantics.esusp;
    semantics_name_ = semantics.name;
  }
  const std::string& semantics_name() const { return semantics_name_; }

  /// Enables/disables edge grouping at runtime (paper: TurnOnEdgeGrouping).
  void TurnOnEdgeGrouping() { options_.enable_edge_grouping = true; }
  void TurnOffEdgeGrouping() { options_.enable_edge_grouping = false; }

  /// Loads an edge-list file as the initial graph and runs the static
  /// peeling once. Raw edge weights pass through ESusp.
  Status LoadGraph(const std::string& path);

  /// Builds the initial graph from `num_vertices` and raw edges, applying
  /// the installed semantics, then runs the static peeling once.
  Status BuildGraph(std::size_t num_vertices, std::span<const Edge> raw_edges);

  /// Current fraudulent community S_P. Flushes any buffered benign edges
  /// first so the answer reflects every inserted edge.
  Community Detect();

  /// Inserts one raw transaction edge and returns the updated community.
  /// With edge grouping on, a benign edge is buffered and the cached
  /// community is returned untouched (Lemma 4.4 guarantees it cannot have
  /// improved).
  Result<Community> InsertEdge(const Edge& raw_edge);

  /// Inserts a batch of raw edges (|ΔE| >= 1) through the batch reorderer.
  Result<Community> InsertBatchEdges(std::span<const Edge> raw_edges);

  /// Apply-only variants: identical reordering without materializing the
  /// community (Detect() stays O(sequence) and is paid per call, so
  /// high-throughput ingestion applies edges and detects per flush).
  /// `applied_weight` (optional) receives the post-ESusp weight the edge
  /// entered (or will enter, if benign-buffered) the graph with — the
  /// weight a later RetireEdge must subtract.
  Status ApplyEdge(const Edge& raw_edge, double* applied_weight = nullptr);
  Status ApplyBatchEdges(std::span<const Edge> raw_edges);

  /// Deletes one (src, dst) edge (Appendix C.1 extension). Buffered benign
  /// edges are flushed first so deletion sees a consistent state.
  Status DeleteEdge(VertexId src, VertexId dst);

  /// Window expiry: removes one (src, dst) edge carrying exactly
  /// `applied_weight` (the value ApplyEdge reported when it entered).
  /// Flushes first — deterministically, so replaying the same
  /// insert/retire history reproduces the same flush points and the
  /// restore bit-identity invariant extends to windowed detectors.
  Status RetireEdge(VertexId src, VertexId dst, double applied_weight);

  /// Definition 4.1 on an already-weighted edge: true iff neither endpoint
  /// can reach the current community density even with this edge added.
  /// Edges introducing unseen vertices are treated as urgent.
  bool IsBenign(const Edge& weighted_edge) const;

  /// Forces a batch reorder of all buffered benign edges.
  Status Flush();

  /// Persists the weighted graph and peeling state so a restarted detector
  /// resumes incremental updates without a from-scratch peel. Flushes the
  /// benign buffer first.
  Status SaveState(const std::string& path);

  /// Restores a detector persisted by SaveState. The installed semantics
  /// are NOT serialized — install the same VSusp/ESusp before restoring.
  Status RestoreState(const std::string& path);

  /// In-memory counterpart of RestoreState: adopts an already-validated
  /// graph + peel state (recomputing the state when `state_present` is
  /// false). Used by the two-phase chain restore, which must parse and
  /// CRC-check every file before mutating any detector.
  void RestoreFromParts(DynamicGraph graph, PeelState state,
                        bool state_present);

  /// Number of buffered (grouped) benign edges awaiting a flush.
  std::size_t PendingBenignEdges() const { return benign_buffer_.size(); }

  /// Read-only views for analysis and tests.
  const DynamicGraph& graph() const { return graph_; }
  const PeelState& peel_state() const { return state_; }

  /// Accumulated affected-area accounting across all reorders.
  const ReorderStats& cumulative_stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  /// Applies ESusp to a raw edge against the current graph.
  Edge Weight(const Edge& raw) const;

  /// Registers unseen endpoints (prior from VSusp) before weighting.
  void EnsureEndpoints(const Edge& raw);

  Status InsertWeightedBatch(std::span<const Edge> weighted);

  SpadeOptions options_;
  VertexSuspFn vsusp_;
  EdgeSuspFn esusp_;
  std::string semantics_name_ = "DG";

  DynamicGraph graph_;
  PeelState state_;
  IncrementalEngine engine_;
  ReorderStats stats_;

  // Edge-grouping state: buffered weighted edges plus the suspiciousness
  // mass each vertex has pending in the buffer (so IsBenign accounts for
  // not-yet-applied edges).
  std::vector<Edge> benign_buffer_;
  std::unordered_map<VertexId, double> pending_wdeg_;
};

}  // namespace spade
