// Dense-subgraph enumeration (paper Appendix C.2): repeatedly peel, report
// the densest community, remove it from the graph, and continue — surfacing
// the multiple fraud instances that a single dense subgraph can bundle
// (paper Figure 14).

#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"
#include "peel/peel_state.h"

namespace spade {

/// Options bounding the enumeration.
struct EnumerateOptions {
  /// Stop after reporting this many communities.
  std::size_t max_communities = 16;
  /// Stop once the next community's density falls below this floor.
  double min_density = 1e-9;
  /// Communities smaller than this are not reported (singletons are rarely
  /// meaningful fraud instances).
  std::size_t min_size = 2;
};

/// Enumerates disjoint dense communities in descending density order.
/// Does not modify `g`; cost is O(rounds * |E| log |V|).
std::vector<Community> EnumerateDenseSubgraphs(const DynamicGraph& g,
                                               const EnumerateOptions& options);

}  // namespace spade
