// Fraud detection during an arbitrary time period (paper Appendix C.3).
//
// Given the full timestamped transaction log, maintains the peeling state of
// the graph induced by one period [τs, τe] and *retargets* it to any other
// period [τs', τe'] by incrementally inserting the edges that enter and
// deleting the edges that leave — covering all five overlap cases of the
// paper's Figure 17 (disjoint, containment either way, and both partial
// overlaps) with one uniform diff computation.

#pragma once

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/incremental_engine.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/semantics.h"
#include "peel/peel_state.h"

namespace spade {

/// Detector over arbitrary periods of a fixed transaction log.
class PeriodDetector {
 public:
  /// `log` must be sorted by timestamp ascending; all endpoints must be
  /// below `num_vertices`. The detector starts with an empty period.
  PeriodDetector(std::size_t num_vertices, std::vector<Edge> log,
                 FraudSemantics semantics);

  /// Moves the materialized period to [begin, end] (inclusive bounds).
  /// Cost is proportional to the symmetric difference between the old and
  /// new periods, not to the period length.
  Status SetPeriod(Timestamp begin, Timestamp end);

  /// Community of the current period's graph.
  Community Detect() const { return state_.DetectCommunity(); }

  std::pair<Timestamp, Timestamp> period() const { return {begin_, end_}; }
  std::size_t EdgesInPeriod() const { return hi_ - lo_; }
  const DynamicGraph& graph() const { return graph_; }
  const PeelState& peel_state() const { return state_; }

 private:
  /// First log index with ts >= t.
  std::size_t LowerBound(Timestamp t) const;

  /// Inserts log[i] into the graph/state, recording its applied weight.
  Status ApplyInsert(std::size_t i);
  /// Removes log[i] using the weight recorded at insertion.
  Status ApplyDelete(std::size_t i);

  std::vector<Edge> log_;
  FraudSemantics semantics_;
  DynamicGraph graph_;
  PeelState state_;
  IncrementalEngine engine_;

  // Materialized half-open log range [lo_, hi_) and its period bounds.
  std::size_t lo_ = 0;
  std::size_t hi_ = 0;
  Timestamp begin_ = 0;
  Timestamp end_ = -1;

  // Weight each materialized edge carried when inserted (degree-dependent
  // semantics give different weights on re-insertion, so deletion must
  // target the recorded copy).
  std::vector<double> applied_weight_;
};

}  // namespace spade
