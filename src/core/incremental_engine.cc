#include "core/incremental_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace spade {

Status IncrementalEngine::InsertEdge(DynamicGraph* g, PeelState* state,
                                     const Edge& edge,
                                     const VertexSuspFn& vsusp,
                                     ReorderStats* stats) {
  return InsertBatch(g, state, std::span<const Edge>(&edge, 1), vsusp, stats);
}

Status IncrementalEngine::InsertBatch(DynamicGraph* g, PeelState* state,
                                      std::span<const Edge> edges,
                                      const VertexSuspFn& vsusp,
                                      ReorderStats* stats) {
  if (edges.empty()) return Status::OK();
  for (const Edge& e : edges) {
    if (!(e.weight > 0.0)) {
      return Status::InvalidArgument("InsertBatch: edge weight must be > 0");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("InsertBatch: self-loops not supported");
    }
  }

  // Vertex insertion (§4.1): unseen endpoints join the head of the peeling
  // sequence carrying their prior suspiciousness as the initial peeling
  // weight (Δ0 = 0 when the semantics assigns no prior). Gap ids implied by
  // a sparse id space are registered as isolated prior-0 vertices so the
  // state always covers the graph. All created vertices are marked black
  // below: the merge then places them canonically relative to existing
  // equal-weight vertices.
  new_vertices_.clear();
  batch_endpoints_.clear();
  for (const Edge& e : edges) {
    batch_endpoints_.push_back(e.src);
    batch_endpoints_.push_back(e.dst);
  }
  std::sort(batch_endpoints_.begin(), batch_endpoints_.end());
  const auto is_batch_endpoint = [&](VertexId nv) {
    return std::binary_search(batch_endpoints_.begin(),
                              batch_endpoints_.end(), nv);
  };
  // Register every id the graph ends up covering but the state does not —
  // gap ids implied by a sparse id space, or endpoints a caller already
  // created in the graph (Spade grows the graph before weighting) — as
  // isolated prior-0 vertices, so the state always covers the graph. Batch
  // endpoints are excluded from gap filling: each takes the prior-carrying
  // branch of its own iteration, regardless of the order endpoints are
  // reached. The gap cursor only moves forward, so across the whole batch
  // every id is inspected once (state coverage is dense below it apart
  // from skipped endpoints, which their own iterations fill before the
  // merge).
  auto gap_cursor = static_cast<VertexId>(state->size());
  for (const Edge& e : edges) {
    for (VertexId v : {e.src, e.dst}) {
      if (v >= g->NumVertices() || !state->ContainsVertex(v)) {
        g->EnsureVertices(v + 1);
        for (; gap_cursor < g->NumVertices(); ++gap_cursor) {
          if (!is_batch_endpoint(gap_cursor) &&
              !state->ContainsVertex(gap_cursor)) {
            state->InsertVertexAtHead(gap_cursor, 0.0);
            new_vertices_.push_back(gap_cursor);
          }
        }
        const double prior = vsusp ? vsusp(v, *g) : 0.0;
        g->SetVertexWeight(v, prior);
        state->InsertVertexAtHead(v, prior);
        new_vertices_.push_back(v);
      }
    }
  }

  // Apply the edges, then mark every created vertex and every endpoint
  // black: their stored peeling weights understate the new edges (or their
  // head placement is order-unverified), so they must be re-examined when
  // the merge scan reaches them. Stored deltas are never modified here —
  // understated values keep every pruning comparison conservative
  // (DESIGN.md §2.4). Instead, each inserted edge credits the recovery
  // accumulator of its earlier-positioned endpoint, which is exactly the
  // term the stored weight would have carried had the edge existed at peel
  // time (the later-positioned endpoint's corrections accrue as the earlier
  // one transitions through T; DESIGN.md §3.1).
  BumpEpoch();
  pending_.EnsureCapacity(g->NumVertices());
  if (g->NumVertices() > 0) {
    EnsureScratch(static_cast<VertexId>(g->NumVertices() - 1));
  }
  black_positions_.clear();
  for (VertexId v : new_vertices_) {
    if (ColorOf(v) != Color::kBlack) {
      SetColor(v, Color::kBlack);
      black_positions_.push_back(state->PositionOf(v));
    }
  }
  for (const Edge& e : edges) {
    SPADE_RETURN_NOT_OK(g->AddEdge(e.src, e.dst, e.weight));
    for (VertexId v : {e.src, e.dst}) {
      if (ColorOf(v) != Color::kBlack) {
        SetColor(v, Color::kBlack);
        black_positions_.push_back(state->PositionOf(v));
      }
    }
    if (options_.stored_delta_recovery) {
      const bool src_earlier =
          state->PositionOf(e.src) < state->PositionOf(e.dst);
      AddRecov(src_earlier ? e.src : e.dst, e.weight);
    }
  }
  std::sort(black_positions_.begin(), black_positions_.end());

  ReorderStats local;
  // Pre-seed every created vertex into the queue at its exact initial
  // weight (prior plus all incident edges — which are all new, hence all
  // pending). Head placement is by fiat, not by peel order, so a stored
  // head delta is NOT a lower bound on later unscanned weights the way an
  // old canonical slot is — a case-1 emit against it could overtake a
  // cheaper head vertex further on. With the whole head block in T from
  // the start, the merge skips those slots and orders the newcomers
  // canonically.
  for (VertexId v : new_vertices_) {
    PushPending(*g, v, state->PositionOf(v), g->WeightedDegree(v), &local);
  }
  MergeLoop(*g, state, black_positions_,
            black_positions_.empty() ? 0 : black_positions_.front(), &local);
  state->InvalidateBest();
  if (stats != nullptr) stats->Accumulate(local);
  return Status::OK();
}

Status IncrementalEngine::DeleteEdge(DynamicGraph* g, PeelState* state,
                                     VertexId src, VertexId dst,
                                     ReorderStats* stats,
                                     const double* weight_filter) {
  if (src >= g->NumVertices() || dst >= g->NumVertices()) {
    return Status::InvalidArgument("DeleteEdge: endpoint out of range");
  }
  auto removed = g->RemoveEdge(src, dst, weight_filter);
  if (!removed.ok()) return removed.status();

  // Both endpoints lose weight at some steps of the sequence: the earlier-
  // peeled endpoint x counted the edge in its stored delta; the later one y
  // did not, but its weight at every step *before* x's position shrank, so
  // either endpoint may deserve an earlier slot (DESIGN.md §2.6).
  const std::size_t ps = state->PositionOf(src);
  const std::size_t pd = state->PositionOf(dst);
  const VertexId x = ps <= pd ? src : dst;
  const VertexId y = ps <= pd ? dst : src;
  const std::size_t px = std::min(ps, pd);
  const std::size_t py = std::max(ps, pd);

  BumpEpoch();
  pending_.EnsureCapacity(g->NumVertices());
  EnsureScratch(static_cast<VertexId>(g->NumVertices() - 1));
  ReorderStats local;

  // Backward walk (Appendix C.1): the earliest step where the endpoint's
  // current peeling weight undercuts the incumbent. w_u(S_k) starts at the
  // post-deletion whole-graph weight and loses each incident edge whose
  // other end peels before step k. Returns the endpoint's old position when
  // it keeps its slot.
  const auto walk_splice = [&](VertexId u, std::size_t pu,
                               double* weight_at_splice) {
    double cur = g->WeightedDegree(u);
    local.touched_edges += g->Degree(u);
    neighbor_weight_by_pos_.clear();
    g->ForEachIncident(u, [&](VertexId v, double w) {
      if (v != u) {
        neighbor_weight_by_pos_.emplace_back(state->PositionOf(v), w);
      }
    });
    std::sort(neighbor_weight_by_pos_.begin(), neighbor_weight_by_pos_.end());
    std::size_t ni = 0;
    for (std::size_t k = 0; k < pu; ++k) {
      if (HeapKeyLess(cur, u, state->DeltaAt(k), state->VertexAt(k))) {
        *weight_at_splice = cur;
        return k;
      }
      while (ni < neighbor_weight_by_pos_.size() &&
             neighbor_weight_by_pos_[ni].first == k) {
        cur -= neighbor_weight_by_pos_[ni].second;
        ++ni;
      }
    }
    *weight_at_splice = cur;
    return pu;
  };

  double wx = 0.0, wy = 0.0;
  const std::size_t splice_x = walk_splice(x, px, &wx);
  const std::size_t splice_y = walk_splice(y, py, &wy);

  // x's stored delta counted the deleted edge, so it shrinks by the edge
  // weight even when x keeps its slot; wx at k == px is exactly that value.
  if (splice_x == px && splice_y == py) {
    state->Assign(px, x, wx);
    state->InvalidateBest();
    if (stats != nullptr) stats->Accumulate(local);
    return Status::OK();
  }

  // Either endpoint moves: seed the queue with both at their exact weights
  // from the merged splice point. The weight is taken at the splice cursor
  // rather than at the endpoint's own slot, so the O(1) recovery identity
  // does not apply — recompute from the graph (two scans per deletion, the
  // same order as walk_splice itself). Their dips can cascade through
  // neighbors; the merge's early-pop sweep handles that transitively.
  const std::size_t splice = std::min(splice_x, splice_y);
  for (VertexId u : {x, y}) {
    PushPending(*g, u, state->PositionOf(u),
                ExactPendingWeight(*g, u, splice, *state, &local), &local);
  }

  black_positions_.clear();
  MergeLoop(*g, state, black_positions_, splice, &local);
  state->InvalidateBest();
  if (stats != nullptr) stats->Accumulate(local);
  return Status::OK();
}

double IncrementalEngine::ExactPendingWeight(const DynamicGraph& g,
                                             VertexId u, std::size_t k,
                                             const PeelState& state,
                                             ReorderStats* stats) const {
  // w_u over the true pending set: the queue T plus every unscanned vertex.
  // Unscanned vertices still carry their pre-merge position (>= k); vertices
  // emitted by this merge are stamped; everything else (stable prefix,
  // skipped gaps) lies before k.
  double w = g.VertexWeight(u);
  ForEachIncidentPrefetched(
      g, u,
      [&](VertexId pv) {
        pending_.PrefetchSlot(pv);
        SPADE_PREFETCH(scratch_vertex_.data() + pv);
        state.PrefetchPosition(pv);
      },
      [&](VertexId v, double c) {
        if (pending_.Contains(v) ||
            (!IsEmitted(v) && state.PositionOf(v) >= k && v != u)) {
          w += c;
        }
      });
  stats->touched_edges += g.Degree(u);
  return w;
}

double IncrementalEngine::RecoveredWeight(const DynamicGraph& g,
                                          const PeelState& state, VertexId u,
                                          double stored_delta, std::size_t k,
                                          ReorderStats* stats) const {
  if (!options_.stored_delta_recovery) {
    return ExactPendingWeight(g, u, k, state, stats);
  }
  // Algorithm 2's gray recovery (DESIGN.md §3.1): u is being read at its own
  // pre-merge slot k, so the stored peeling weight counts exactly u's vertex
  // weight plus its edges into the pre-merge suffix [k, n); the accumulator
  // carries the net correction from every neighbor that entered or left T
  // and every inserted edge. O(1) instead of an incident-list rescan.
  (void)g;
  ++stats->recovery_lookups;
  return stored_delta + RecovOf(u);
}

void IncrementalEngine::PushPending(const DynamicGraph& g, VertexId u,
                                    std::size_t old_pos, double weight,
                                    ReorderStats* stats) {
  pending_.Push(u, weight);
  ++stats->affected_vertices;
  if (options_.stored_delta_recovery) {
    // Defer the gray+credit pass: if u pops before the merge reads another
    // affected slot, neither the credits nor their matching debits are ever
    // observable, and u's only incident pass is the relax pass at emit. The
    // degree budget funds white-slot adjacency probes in the meantime.
    Scratch(u).deferred = true;
    uncredited_.emplace_back(u, old_pos);
    ++deferred_count_;
    credit_budget_ += static_cast<std::ptrdiff_t>(g.Degree(u));
  } else {
    g.ForEachIncident(u, [&](VertexId v, double) {
      if (ColorOf(v) == Color::kWhite) SetColor(v, Color::kGray);
    });
    stats->touched_edges += g.Degree(u);
  }
}

void IncrementalEngine::FlushCredits(const DynamicGraph& g,
                                     const PeelState& state,
                                     ReorderStats* stats) {
  for (const auto& [u, old_pos] : uncredited_) {
    // Entries of members that already popped are stale — their pass was
    // cancelled, not deferred.
    VertexScratch& su = Scratch(u);
    if (!su.deferred) continue;
    su.deferred = false;
    // u moved from "unscanned" to "pending": a later-positioned unscanned
    // neighbor's stored weight missed this edge (u peeled first in the old
    // order), but the edge now counts while u sits in T — credit it. The
    // earlier-positioned ones already count it in their stored weight.
    // Crediting a neighbor that is itself pending or already emitted is
    // harmless (its accumulator is never read again this epoch), so the
    // position test is the only guard — one packed-scratch line and one
    // position read per edge, with a branchless accumulate. Both lines are
    // prefetched a few neighbors ahead of the visit.
    ForEachIncidentPrefetched(
        g, u,
        [&](VertexId pv) {
          SPADE_PREFETCH(scratch_vertex_.data() + pv);
          state.PrefetchPosition(pv);
        },
        [&](VertexId v, double c) {
          VertexScratch& s = Scratch(v);
          if (s.color == static_cast<std::uint8_t>(Color::kWhite)) {
            s.color = static_cast<std::uint8_t>(Color::kGray);
          }
          s.recov += state.PositionOf(v) > old_pos ? c : 0.0;
        });
    stats->touched_edges += g.Degree(u);
  }
  uncredited_.clear();
  deferred_count_ = 0;
  credit_budget_ = 0;
}

void IncrementalEngine::EmitFromQueue(const DynamicGraph& g, PeelState* state,
                                      std::size_t w, std::size_t k,
                                      ReorderStats* stats) {
  const double dmin = pending_.TopWeight();
  const VertexId umin = pending_.Pop();
  const std::size_t old_pos = state->PositionOf(umin);
  WriteEntry(state, w, umin, dmin);
  MarkEmitted(umin);

  // Was umin's gray+credit pass ever flushed? If not, cancel it O(1) via
  // the scratch flag (its list entry goes stale; the flush skips those):
  // no credits were written, so no cancelling debits are owed.
  bool credited = true;
  if (options_.stored_delta_recovery) {
    VertexScratch& su = Scratch(umin);
    if (su.deferred) {
      su.deferred = false;
      --deferred_count_;
      credit_budget_ -= static_cast<std::ptrdiff_t>(g.Degree(umin));
      credited = false;
    }
  }

  // Phase 1: peeling umin releases its edges from every neighbor that was
  // already in the queue, and — when umin's credit pass ran and it emits at
  // or behind the scan cursor — debits the recovery accumulator of every
  // unscanned neighbor: whether the stored weight counted the edge
  // (old_pos after the neighbor) or the credit pass added it, an emitted
  // umin must no longer contribute. Debiting an already-emitted neighbor is
  // harmless — its accumulator is never read again this epoch. No debits
  // are owed otherwise: an uncredited umin wrote no credits, and an early
  // emit (old_pos > k, deletion path) sweeps every readable unscanned
  // neighbor into the queue at an exact from-graph weight below, making
  // their accumulators unread.
  if (credited && old_pos <= k) {
    ForEachIncidentPrefetched(
        g, umin,
        [&](VertexId pv) {
          pending_.PrefetchSlot(pv);
          SPADE_PREFETCH(scratch_vertex_.data() + pv);
        },
        [&](VertexId v, double c) {
          if (pending_.Contains(v)) {
            pending_.Decrease(v, -c);
          } else if (options_.stored_delta_recovery) {
            AddRecov(v, -c);
          }
        });
  } else {
    ForEachIncidentPrefetched(
        g, umin, [&](VertexId pv) { pending_.PrefetchSlot(pv); },
        [&](VertexId v, double c) {
          if (pending_.Contains(v)) pending_.Decrease(v, -c);
        });
  }
  // Phase 2: if umin peels ahead of its old schedule (old position not yet
  // reached by the scan), its unscanned neighbors' dips accelerate — their
  // stored weights stop being trustworthy ordering bounds, so they are
  // swept into the queue at their exact current weights (DESIGN.md §2.6).
  // The Contains() guard keeps phase 1's relaxations and parallel edges
  // from double-counting: an exact weight already reflects umin's removal.
  // The sweep takes each weight at the scan cursor, ahead of the swept
  // vertex's own slot, so the O(1) stored-delta identity does not apply
  // (it misses edges to unscanned vertices between the cursor and the
  // slot); recompute from the graph. Early emission only ever happens on
  // the deletion path — insertion merges push every vertex at its own slot
  // — so the insert hot path never pays this scan (DESIGN.md §3.1).
  if (old_pos > k) {
    g.ForEachIncident(umin, [&](VertexId v, double c) {
      (void)c;
      if (!pending_.Contains(v) && !IsEmitted(v) &&
          state->PositionOf(v) >= k) {
        PushPending(g, v, state->PositionOf(v),
                    ExactPendingWeight(g, v, k, *state, stats), stats);
      }
    });
  }
  stats->touched_edges += g.Degree(umin);
}

void IncrementalEngine::MergeLoop(const DynamicGraph& g, PeelState* state,
                                  const std::vector<std::size_t>& blacks,
                                  std::size_t start, ReorderStats* stats) {
  if (blacks.empty() && pending_.empty()) return;
  const std::size_t n = state->size();
  RebaseScratch(start);
  InvalidateLookahead();

  std::size_t k = start;  // scan cursor over old entries
  std::size_t w = start;  // write cursor over the rewritten sequence
  std::size_t bi = 0;     // next unconsumed black position

  while (true) {
    if (pending_.empty() && w == k) {
      while (bi < blacks.size() && blacks[bi] < k) ++bi;
      if (bi == blacks.size()) break;
      // Positions in [k, blacks[bi]) are untouched: jump over the gap and
      // restart the preservation window there.
      k = w = blacks[bi];
      RebaseScratch(k);
      InvalidateLookahead();
    }
    if (k >= n) {
      // No more old entries: drain the pending queue.
      while (!pending_.empty()) {
        EmitFromQueue(g, state, w++, k, stats);
        ++stats->rewritten_span;
      }
      break;
    }

    // Read the incumbent through the batched read-ahead window; the scan
    // cursor only moves forward within a rebase, so a miss means the window
    // is exhausted and the next batch starts exactly at k.
    if (k - lookahead_base_ >= lookahead_count_) FillLookahead(*state, k, n);
    const VertexId u_k = lookahead_vertex_[k - lookahead_base_];
    const double d_k = lookahead_delta_[k - lookahead_base_];

    if (pending_.Contains(u_k) || IsEmitted(u_k)) {
      // The old slot of a vertex pulled into the queue out of schedule.
      ++k;
      continue;
    }

    if (!pending_.empty() &&
        HeapKeyLess(pending_.TopWeight(), pending_.TopVertex(), d_k, u_k)) {
      // Case 1: the queue head peels before the incumbent. The stored d_k
      // never overstates u_k's true weight, so this is conservative.
      EmitFromQueue(g, state, w++, k, stats);
      ++stats->rewritten_span;
      continue;
    }
    // Classify slot k. Colors and accumulators may be behind by the
    // deferred gray+credit passes of current queue members; a white-looking
    // incumbent is genuinely untouched iff it is also not adjacent to any
    // queue member (white implies zero accumulator and no new edges, and
    // relaxation is only owed to queue neighbors). Probing the incumbent's
    // own incident list costs O(deg(u_k)) against the O(deg(T)) of a flush;
    // the degree budget accumulated at push time keeps the probes bounded
    // by one deferred pass overall, so the worst case stays one incident
    // pass per affected vertex while a queue that drains before the next
    // affected read never pays its credit pass at all.
    bool affected = ColorOf(u_k) != Color::kWhite;
    bool have_probe_weight = false;
    double probe_weight = 0.0;
    if (options_.stored_delta_recovery && deferred_count_ > 0) {
      if (affected) {
        // Gray or black with deferred credits outstanding: the accumulator
        // is behind by exactly those credits — settle them.
        FlushCredits(g, *state, stats);
      } else {
        const auto deg = static_cast<std::ptrdiff_t>(g.Degree(u_k));
        if (credit_budget_ < deg) {
          FlushCredits(g, *state, stats);
          affected = ColorOf(u_k) != Color::kWhite;
        } else {
          // White slot: zero accumulator and no new edges, so it is
          // untouched unless adjacent to a queue member — and since a
          // credited pass would have grayed it, every queue neighbor is
          // uncredited, which makes its exact pending weight computable in
          // the same probe: the stored delta plus its edges to earlier-
          // positioned queue members (later-positioned ones the stored
          // delta already counts). The deferred passes never run for this.
          credit_budget_ -= deg;
          stats->touched_edges += g.Degree(u_k);
          double add = 0.0;
          bool adjacent = false;
          ForEachIncidentPrefetched(
              g, u_k,
              [&](VertexId pv) {
                pending_.PrefetchSlot(pv);
                state->PrefetchPosition(pv);
              },
              [&](VertexId v, double c) {
                if (pending_.Contains(v)) {
                  adjacent = true;
                  if (state->PositionOf(v) < k) add += c;
                }
              });
          if (adjacent) {
            affected = true;
            have_probe_weight = true;
            probe_weight = d_k + add;
          }
        }
      }
    }
    if (affected) {
      // Case 2(a): affected vertex — its stored weight may miss new edges
      // or edges into the queue; recover the exact value (O(1) from the
      // stored delta plus the accumulator, or straight from the adjacency
      // probe) and let the queue order it.
      PushPending(g, u_k, k,
                  have_probe_weight
                      ? probe_weight
                      : RecoveredWeight(g, *state, u_k, d_k, k, stats),
                  stats);
      ++k;
    } else {
      // Case 2(b): untouched vertex with the smallest weight — copy through.
      // No recovery bookkeeping is owed: a white vertex has no queue
      // neighbors (pushes gray their whole neighborhood) and emits at
      // exactly its old slot, so no unscanned neighbor's stored weight
      // counted it wrongly. The emitted mark is needed only while the write
      // cursor runs ahead of the scan cursor (deletion merges, where early
      // emits of splice seeds can push w past k): a copy written at w <= k
      // lands at or before the cursor, so every emitted-or-pending test
      // already excludes it by position. Insertion merges always have
      // w <= k, so the hot path never pays this random store — the
      // dominant write of a long displacement run.
      WriteEntry(state, w, u_k, d_k);
      if (w > k) MarkEmitted(u_k);
      ++w;
      ++k;
      ++stats->rewritten_span;
    }
  }
}

void IncrementalEngine::FillLookahead(const PeelState& state, std::size_t k,
                                      std::size_t n) {
  // Every position in [k, n) still holds its pre-update entry in exactly
  // one of two places, split at a single boundary: the preservation window
  // covers [scratch_base_, scratch_end) — every slot the write cursor has
  // passed — and the live state holds everything beyond. Copy each side
  // with its own tight loop; no per-slot branch.
  const std::size_t count = std::min(kLookahead, n - k);
  const std::size_t scratch_end = scratch_base_ + scratch_seq_.size();
  std::size_t i = 0;
  for (; i < count && k + i < scratch_end; ++i) {
    lookahead_vertex_[i] = scratch_seq_[k + i - scratch_base_];
    lookahead_delta_[i] = scratch_delta_[k + i - scratch_base_];
  }
  for (; i < count; ++i) {
    lookahead_vertex_[i] = state.VertexAt(k + i);
    lookahead_delta_[i] = state.DeltaAt(k + i);
  }
  lookahead_base_ = k;
  lookahead_count_ = count;
  // Classification of each upcoming slot opens with a stamp check on the
  // incumbent's packed-scratch line and often a heap-membership probe; pull
  // both lines for the whole window now, while the batch is hot.
  for (std::size_t j = 0; j < count; ++j) {
    SPADE_PREFETCH(scratch_vertex_.data() + lookahead_vertex_[j]);
    pending_.PrefetchSlot(lookahead_vertex_[j]);
  }
}

void IncrementalEngine::WriteEntry(PeelState* state, std::size_t w, VertexId v,
                                   double delta) {
  // Preserve the old entry before overwriting it, so later reads of
  // positions the write cursor has passed still see the pre-update values.
  const std::size_t end = scratch_base_ + scratch_seq_.size();
  if (w >= end && w < state->size()) {
    SPADE_DCHECK_EQ(w, end);
    scratch_seq_.push_back(state->VertexAt(w));
    scratch_delta_.push_back(state->DeltaAt(w));
  }
  state->Assign(w, v, delta);
}

}  // namespace spade
