#include "core/incremental_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace spade {

Status IncrementalEngine::InsertEdge(DynamicGraph* g, PeelState* state,
                                     const Edge& edge,
                                     const VertexSuspFn& vsusp,
                                     ReorderStats* stats) {
  return InsertBatch(g, state, std::span<const Edge>(&edge, 1), vsusp, stats);
}

Status IncrementalEngine::InsertBatch(DynamicGraph* g, PeelState* state,
                                      std::span<const Edge> edges,
                                      const VertexSuspFn& vsusp,
                                      ReorderStats* stats) {
  if (edges.empty()) return Status::OK();
  for (const Edge& e : edges) {
    if (!(e.weight > 0.0)) {
      return Status::InvalidArgument("InsertBatch: edge weight must be > 0");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("InsertBatch: self-loops not supported");
    }
  }

  // Vertex insertion (§4.1): unseen endpoints join the head of the peeling
  // sequence carrying their prior suspiciousness as the initial peeling
  // weight (Δ0 = 0 when the semantics assigns no prior). Gap ids implied by
  // a sparse id space are registered as isolated prior-0 vertices so the
  // state always covers the graph. All created vertices are marked black
  // below: the merge then places them canonically relative to existing
  // equal-weight vertices.
  new_vertices_.clear();
  for (const Edge& e : edges) {
    for (VertexId v : {e.src, e.dst}) {
      if (v >= g->NumVertices() || !state->ContainsVertex(v)) {
        const std::size_t old_n = g->NumVertices();
        g->EnsureVertices(v + 1);
        for (std::size_t nv = old_n; nv + 1 < g->NumVertices(); ++nv) {
          if (!state->ContainsVertex(static_cast<VertexId>(nv))) {
            state->InsertVertexAtHead(static_cast<VertexId>(nv), 0.0);
            new_vertices_.push_back(static_cast<VertexId>(nv));
          }
        }
        const double prior = vsusp ? vsusp(v, *g) : 0.0;
        g->SetVertexWeight(v, prior);
        state->InsertVertexAtHead(v, prior);
        new_vertices_.push_back(v);
      }
    }
  }

  // Apply the edges, then mark every created vertex and every endpoint
  // black: their stored peeling weights understate the new edges (or their
  // head placement is order-unverified), so they must be re-examined when
  // the merge scan reaches them. Stored deltas are never modified here —
  // understated values keep every pruning comparison conservative
  // (DESIGN.md §2.4).
  BumpEpoch();
  black_positions_.clear();
  for (VertexId v : new_vertices_) {
    if (ColorOf(v) != Color::kBlack) {
      SetColor(v, Color::kBlack);
      black_positions_.push_back(state->PositionOf(v));
    }
  }
  for (const Edge& e : edges) {
    SPADE_RETURN_NOT_OK(g->AddEdge(e.src, e.dst, e.weight));
    for (VertexId v : {e.src, e.dst}) {
      if (ColorOf(v) != Color::kBlack) {
        SetColor(v, Color::kBlack);
        black_positions_.push_back(state->PositionOf(v));
      }
    }
  }
  std::sort(black_positions_.begin(), black_positions_.end());

  pending_.EnsureCapacity(g->NumVertices());
  ReorderStats local;
  MergeLoop(*g, state, black_positions_,
            black_positions_.empty() ? 0 : black_positions_.front(), &local);
  state->InvalidateBest();
  if (stats != nullptr) stats->Accumulate(local);
  return Status::OK();
}

Status IncrementalEngine::DeleteEdge(DynamicGraph* g, PeelState* state,
                                     VertexId src, VertexId dst,
                                     ReorderStats* stats,
                                     const double* weight_filter) {
  if (src >= g->NumVertices() || dst >= g->NumVertices()) {
    return Status::InvalidArgument("DeleteEdge: endpoint out of range");
  }
  auto removed = g->RemoveEdge(src, dst, weight_filter);
  if (!removed.ok()) return removed.status();

  // Both endpoints lose weight at some steps of the sequence: the earlier-
  // peeled endpoint x counted the edge in its stored delta; the later one y
  // did not, but its weight at every step *before* x's position shrank, so
  // either endpoint may deserve an earlier slot (DESIGN.md §2.6).
  const std::size_t ps = state->PositionOf(src);
  const std::size_t pd = state->PositionOf(dst);
  const VertexId x = ps <= pd ? src : dst;
  const VertexId y = ps <= pd ? dst : src;
  const std::size_t px = std::min(ps, pd);
  const std::size_t py = std::max(ps, pd);

  BumpEpoch();
  ReorderStats local;

  // Backward walk (Appendix C.1): the earliest step where the endpoint's
  // current peeling weight undercuts the incumbent. w_u(S_k) starts at the
  // post-deletion whole-graph weight and loses each incident edge whose
  // other end peels before step k. Returns the endpoint's old position when
  // it keeps its slot.
  const auto walk_splice = [&](VertexId u, std::size_t pu,
                               double* weight_at_splice) {
    double cur = g->WeightedDegree(u);
    local.touched_edges += g->Degree(u);
    neighbor_weight_by_pos_.clear();
    g->ForEachIncident(u, [&](VertexId v, double w) {
      if (v != u) {
        neighbor_weight_by_pos_.emplace_back(state->PositionOf(v), w);
      }
    });
    std::sort(neighbor_weight_by_pos_.begin(), neighbor_weight_by_pos_.end());
    std::size_t ni = 0;
    for (std::size_t k = 0; k < pu; ++k) {
      if (HeapKeyLess(cur, u, state->DeltaAt(k), state->VertexAt(k))) {
        *weight_at_splice = cur;
        return k;
      }
      while (ni < neighbor_weight_by_pos_.size() &&
             neighbor_weight_by_pos_[ni].first == k) {
        cur -= neighbor_weight_by_pos_[ni].second;
        ++ni;
      }
    }
    *weight_at_splice = cur;
    return pu;
  };

  double wx = 0.0, wy = 0.0;
  const std::size_t splice_x = walk_splice(x, px, &wx);
  const std::size_t splice_y = walk_splice(y, py, &wy);

  // x's stored delta counted the deleted edge, so it shrinks by the edge
  // weight even when x keeps its slot; wx at k == px is exactly that value.
  if (splice_x == px && splice_y == py) {
    state->Assign(px, x, wx);
    state->InvalidateBest();
    if (stats != nullptr) stats->Accumulate(local);
    return Status::OK();
  }

  // Either endpoint moves: seed the queue with both at their exact weights
  // from the merged splice point. Their dips can cascade through neighbors;
  // the merge's early-pop sweep handles that transitively.
  const std::size_t splice = std::min(splice_x, splice_y);
  pending_.EnsureCapacity(g->NumVertices());
  for (VertexId u : {x, y}) {
    PushPending(*g, u, ExactPendingWeight(*g, u, splice, *state, &local),
                &local);
  }

  black_positions_.clear();
  MergeLoop(*g, state, black_positions_, splice, &local);
  state->InvalidateBest();
  if (stats != nullptr) stats->Accumulate(local);
  return Status::OK();
}

double IncrementalEngine::ExactPendingWeight(const DynamicGraph& g,
                                             VertexId u, std::size_t k,
                                             const PeelState& state,
                                             ReorderStats* stats) const {
  // w_u over the true pending set: the queue T plus every unscanned vertex.
  // Unscanned vertices still carry their pre-merge position (>= k); vertices
  // emitted by this merge are stamped; everything else (stable prefix,
  // skipped gaps) lies before k.
  double w = g.VertexWeight(u);
  g.ForEachIncident(u, [&](VertexId v, double c) {
    if (pending_.Contains(v) ||
        (!IsEmitted(v) && state.PositionOf(v) >= k && v != u)) {
      w += c;
    }
  });
  stats->touched_edges += g.Degree(u);
  return w;
}

void IncrementalEngine::PushPending(const DynamicGraph& g, VertexId u,
                                    double weight, ReorderStats* stats) {
  pending_.Push(u, weight);
  ++stats->affected_vertices;
  g.ForEachIncident(u, [&](VertexId v, double) {
    if (ColorOf(v) == Color::kWhite) SetColor(v, Color::kGray);
  });
  stats->touched_edges += g.Degree(u);
}

void IncrementalEngine::EmitFromQueue(const DynamicGraph& g, PeelState* state,
                                      std::size_t w, std::size_t k,
                                      ReorderStats* stats) {
  const double dmin = pending_.TopWeight();
  const VertexId umin = pending_.Pop();
  const std::size_t old_pos = state->PositionOf(umin);
  WriteEntry(state, w, umin, dmin);
  MarkEmitted(umin);

  // Phase 1: peeling umin releases its edges from every neighbor that was
  // already in the queue.
  g.ForEachIncident(umin, [&](VertexId v, double c) {
    if (pending_.Contains(v)) pending_.Adjust(v, -c);
  });
  // Phase 2: if umin peels ahead of its old schedule (old position not yet
  // reached by the scan), its unscanned neighbors' dips accelerate — their
  // stored weights stop being trustworthy ordering bounds, so they are
  // swept into the queue at their exact current weights (DESIGN.md §2.6).
  // The Contains() guard keeps phase 1's relaxations and parallel edges
  // from double-counting: an exact weight already reflects umin's removal.
  if (old_pos > k) {
    g.ForEachIncident(umin, [&](VertexId v, double c) {
      (void)c;
      if (!pending_.Contains(v) && !IsEmitted(v) &&
          state->PositionOf(v) >= k) {
        PushPending(g, v, ExactPendingWeight(g, v, k, *state, stats), stats);
      }
    });
  }
  stats->touched_edges += g.Degree(umin);
}

void IncrementalEngine::MergeLoop(const DynamicGraph& g, PeelState* state,
                                  const std::vector<std::size_t>& blacks,
                                  std::size_t start, ReorderStats* stats) {
  if (blacks.empty() && pending_.empty()) return;
  const std::size_t n = state->size();
  RebaseScratch(start);

  std::size_t k = start;  // scan cursor over old entries
  std::size_t w = start;  // write cursor over the rewritten sequence
  std::size_t bi = 0;     // next unconsumed black position

  while (true) {
    if (pending_.empty() && w == k) {
      while (bi < blacks.size() && blacks[bi] < k) ++bi;
      if (bi == blacks.size()) break;
      // Positions in [k, blacks[bi]) are untouched: jump over the gap and
      // restart the preservation window there.
      k = w = blacks[bi];
      RebaseScratch(k);
    }
    if (k >= n) {
      // No more old entries: drain the pending queue.
      while (!pending_.empty()) {
        EmitFromQueue(g, state, w++, k, stats);
        ++stats->rewritten_span;
      }
      break;
    }

    VertexId u_k;
    double d_k;
    ReadEntry(*state, k, &u_k, &d_k);

    if (pending_.Contains(u_k) || IsEmitted(u_k)) {
      // The old slot of a vertex pulled into the queue out of schedule.
      ++k;
      continue;
    }

    if (!pending_.empty() &&
        HeapKeyLess(pending_.TopWeight(), pending_.TopVertex(), d_k, u_k)) {
      // Case 1: the queue head peels before the incumbent. The stored d_k
      // never overstates u_k's true weight, so this is conservative.
      EmitFromQueue(g, state, w++, k, stats);
      ++stats->rewritten_span;
    } else if (ColorOf(u_k) != Color::kWhite) {
      // Case 2(a): affected vertex — its stored weight may miss new edges
      // or edges into the queue; recover the exact value and let the queue
      // order it.
      PushPending(g, u_k, ExactPendingWeight(g, u_k, k, *state, stats),
                  stats);
      ++k;
    } else {
      // Case 2(b): untouched vertex with the smallest weight — copy through.
      WriteEntry(state, w, u_k, d_k);
      MarkEmitted(u_k);
      ++w;
      ++k;
      ++stats->rewritten_span;
    }
  }
}

void IncrementalEngine::ReadEntry(const PeelState& state, std::size_t k,
                                  VertexId* v, double* delta) const {
  if (k >= scratch_base_ && k - scratch_base_ < scratch_seq_.size()) {
    *v = scratch_seq_[k - scratch_base_];
    *delta = scratch_delta_[k - scratch_base_];
  } else {
    *v = state.VertexAt(k);
    *delta = state.DeltaAt(k);
  }
}

void IncrementalEngine::WriteEntry(PeelState* state, std::size_t w, VertexId v,
                                   double delta) {
  // Preserve the old entry before overwriting it, so later reads of
  // positions the write cursor has passed still see the pre-update values.
  const std::size_t end = scratch_base_ + scratch_seq_.size();
  if (w >= end && w < state->size()) {
    SPADE_DCHECK_EQ(w, end);
    scratch_seq_.push_back(state->VertexAt(w));
    scratch_delta_.push_back(state->DeltaAt(w));
  }
  state->Assign(w, v, delta);
}

}  // namespace spade
